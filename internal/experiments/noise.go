package experiments

import (
	"fmt"

	"podium/internal/core"
	"podium/internal/groups"
	"podium/internal/metrics"
	"podium/internal/profile"
	"podium/internal/synth"
)

// NoiseConfig parameterizes the randomized-selection study the paper
// proposes as future work (Section 10): perturb group weights with
// multiplicative Gaussian noise, repeat the selection, and measure the
// effect on output diversity (how different the selected subsets are across
// runs) versus solution quality (score retained under the true weights).
type NoiseConfig struct {
	Dataset     *synth.Dataset
	Budget      int
	Seed        int64
	Levels      []float64 // noise σ values; default {0, 0.1, 0.25, 0.5, 1.0}
	Repetitions int       // default 10
	TopK        int
}

func (c NoiseConfig) withDefaults() NoiseConfig {
	if c.Budget <= 0 {
		c.Budget = 8
	}
	if len(c.Levels) == 0 {
		c.Levels = []float64{0, 0.1, 0.25, 0.5, 1.0}
	}
	if c.Repetitions <= 0 {
		c.Repetitions = 10
	}
	if c.TopK <= 0 {
		c.TopK = 200
	}
	return c
}

// RunNoiseAblation measures, per noise level: the mean total score under the
// true weights (quality retained), the mean top-k coverage, and the output
// variety (average pairwise Jaccard distance between the runs' selections).
func RunNoiseAblation(cfg NoiseConfig) *Table {
	cfg = cfg.withDefaults()
	ix := groups.Build(cfg.Dataset.Repo, groups.Config{K: 3})
	inst := groups.NewInstance(ix, groups.WeightLBS, groups.CoverSingle, cfg.Budget)
	t := &Table{
		Title:   "Randomized selection: weight noise — " + cfg.Dataset.Name,
		Metrics: []string{MetricTotalScore, MetricTopK, "Output Variety"},
	}
	for _, sigma := range cfg.Levels {
		var runs [][]profile.UserID
		var score, topk float64
		for rep := 0; rep < cfg.Repetitions; rep++ {
			// σ=0 is the deterministic reference run; randomized
			// tie-breaking joins in only once noise is on.
			res := core.NoisyGreedy(inst, cfg.Budget, core.Noise{
				Seed:         cfg.Seed + int64(rep)*6151,
				WeightStdDev: sigma,
				RandomTies:   sigma > 0,
			})
			runs = append(runs, res.Users)
			score += res.Score
			topk += metrics.TopKCoverage(ix, res.Users, cfg.TopK)
		}
		n := float64(cfg.Repetitions)
		t.Rows = append(t.Rows, Row{
			Name: fmt.Sprintf("σ=%.2f", sigma),
			Values: map[string]float64{
				MetricTotalScore: score / n,
				MetricTopK:       topk / n,
				"Output Variety": core.SelectionVariety(runs),
			},
		})
	}
	return t
}
