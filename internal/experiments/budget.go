package experiments

import (
	"fmt"

	"podium/internal/groups"
	"podium/internal/metrics"
	"podium/internal/opinions"
	"podium/internal/profile"
	"podium/internal/stats"
	"podium/internal/synth"
)

// BudgetSweepConfig parameterizes the budget-sensitivity experiment. The
// paper observes (§8.4): "Since each user belongs to many groups, we can
// achieve high coverage even with a small B. As B increases, all the quality
// metric improve and the gaps between the baselines slightly decrease, but
// the general trends are preserved."
type BudgetSweepConfig struct {
	Dataset *synth.Dataset
	Budgets []int // default {2, 4, 8, 16, 32}
	TopK    int
	Seed    int64
}

func (c BudgetSweepConfig) withDefaults() BudgetSweepConfig {
	if len(c.Budgets) == 0 {
		c.Budgets = []int{2, 4, 8, 16, 32}
	}
	if c.TopK <= 0 {
		c.TopK = 200
	}
	return c
}

// RunBudgetSweep measures, per budget, each algorithm's top-k coverage plus
// the Podium-vs-best-baseline gap. One row per budget; one column per
// algorithm plus the "Gap" column.
func RunBudgetSweep(cfg BudgetSweepConfig) *Table {
	cfg = cfg.withDefaults()
	ix := groups.Build(cfg.Dataset.Repo, groups.Config{K: 3})
	selectors := DefaultSelectors(cfg.Seed)
	t := &Table{Title: "Budget sweep: top-k coverage — " + cfg.Dataset.Name}
	for _, sel := range selectors {
		t.Metrics = append(t.Metrics, sel.Name())
	}
	t.Metrics = append(t.Metrics, "Gap")
	for _, b := range cfg.Budgets {
		row := Row{Name: fmt.Sprintf("B=%d", b), Values: map[string]float64{}}
		var podium, bestOther float64
		for _, sel := range selectors {
			users := sel.Select(ix, b)
			cov := metrics.TopKCoverage(ix, users, cfg.TopK)
			row.Values[sel.Name()] = cov
			if sel.Name() == "Podium" {
				podium = cov
			} else if cov > bestOther {
				bestOther = cov
			}
		}
		row.Values["Gap"] = podium - bestOther
		t.Rows = append(t.Rows, row)
	}
	return t
}

// TransferConfig parameterizes the diversity-transfer experiment: the paper
// concludes that "diverse users provide diverse opinions" (reconfirming Wu
// et al.). We quantify it: sample many random subsets, measure each subset's
// intrinsic total score and its opinion-diversity metrics, and report the
// Pearson correlation between them. Positive correlations are the
// mechanism behind Figures 3b/3d.
type TransferConfig struct {
	Dataset      *synth.Dataset
	Budget       int
	Samples      int // default 60 random subsets
	Destinations int // opinion evaluation scope; default 50
	Seed         int64
}

func (c TransferConfig) withDefaults() TransferConfig {
	if c.Budget <= 0 {
		c.Budget = 8
	}
	if c.Samples <= 0 {
		c.Samples = 60
	}
	if c.Destinations <= 0 {
		c.Destinations = 50
	}
	return c
}

// RunDiversityTransfer reports the correlation between intrinsic diversity
// and each opinion metric over random subsets.
func RunDiversityTransfer(cfg TransferConfig) *Table {
	cfg = cfg.withDefaults()
	ix := groups.Build(cfg.Dataset.Repo, groups.Config{K: 3})
	inst := groups.NewInstance(ix, groups.WeightLBS, groups.CoverSingle, cfg.Budget)
	rng := stats.NewRand(cfg.Seed)
	n := cfg.Dataset.Repo.NumUsers()

	intrinsic := make([]float64, cfg.Samples)
	topics := make([]float64, cfg.Samples)
	ratingSim := make([]float64, cfg.Samples)
	for i := 0; i < cfg.Samples; i++ {
		idx := stats.SampleWithoutReplacement(rng, n, cfg.Budget)
		users := make([]profile.UserID, len(idx))
		for j, v := range idx {
			users[j] = profile.UserID(v)
		}
		intrinsic[i] = metrics.TotalScore(inst, users)
		ev := evaluateTop(cfg, users)
		topics[i] = ev.topic
		ratingSim[i] = ev.sim
	}
	return &Table{
		Title:   "Diversity transfer: corr(intrinsic score, opinion metric) — " + cfg.Dataset.Name,
		Metrics: []string{"Topic+Sentiment r", "Rating Dist Sim r"},
		Rows: []Row{{
			Name: fmt.Sprintf("%d random subsets of %d", cfg.Samples, cfg.Budget),
			Values: map[string]float64{
				"Topic+Sentiment r": stats.Pearson(intrinsic, topics),
				"Rating Dist Sim r": stats.Pearson(intrinsic, ratingSim),
			},
		}},
	}
}

type transferPoint struct{ topic, sim float64 }

func evaluateTop(cfg TransferConfig, users []profile.UserID) transferPoint {
	ev := opinions.EvaluateTop(cfg.Dataset.Store, users, cfg.Destinations)
	return transferPoint{topic: ev.TopicSentiment, sim: ev.RatingSim}
}
