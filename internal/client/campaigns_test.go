package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestClientCampaignLifecycle(t *testing.T) {
	c, _ := newPair(t)
	ctx := context.Background()

	created, err := c.CreateCampaign(ctx, CampaignRequest{Budget: 2, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if created.ID != 1 || created.Budget != 2 {
		t.Fatalf("created = %+v", created)
	}

	done, err := c.WaitCampaign(ctx, created.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !done.Terminal() {
		t.Fatalf("WaitCampaign returned non-terminal state %q", done.State)
	}
	if done.State != "converged" && done.State != "exhausted" {
		t.Fatalf("state = %q", done.State)
	}
	if len(done.Rounds) == 0 {
		t.Fatalf("detail view has no transcript: %+v", done)
	}

	list, err := c.Campaigns(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != created.ID {
		t.Fatalf("list = %+v", list)
	}

	if _, err := c.Campaign(ctx, 999); err == nil || !strings.Contains(err.Error(), "unknown campaign") {
		t.Fatalf("unknown campaign error = %v", err)
	}
}

func TestClientCampaignCancel(t *testing.T) {
	c, _ := newPair(t)
	ctx := context.Background()
	// Real-time pacing keeps the campaign running long enough to cancel.
	created, err := c.CreateCampaign(ctx, CampaignRequest{
		Budget: 2, Seed: 5, TimeScale: 1.0, MeanLatencyMs: 2000, TimeoutMs: 3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CancelCampaign(ctx, created.ID); err != nil {
		t.Fatal(err)
	}
	done, err := c.WaitCampaign(ctx, created.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != "cancelled" {
		t.Fatalf("state = %q, want cancelled", done.State)
	}
}

func TestClientDefaultTimeout(t *testing.T) {
	// A server that never answers must trip the client-side deadline instead
	// of hanging the caller.
	stall := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-stall
	}))
	defer func() { close(stall); ts.Close() }()

	c := NewWithTimeout(ts.URL, nil, 50*time.Millisecond)
	start := time.Now()
	_, err := c.Status()
	if err == nil {
		t.Fatal("stalled server produced no error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
	if !strings.Contains(err.Error(), "deadline") && !strings.Contains(err.Error(), "Client.Timeout") {
		t.Fatalf("error %v does not look like a timeout", err)
	}

	// A caller-supplied deadline wins over the default.
	c2 := New(ts.URL, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := c2.Campaigns(ctx); err == nil {
		t.Fatal("caller deadline was ignored")
	}
}
