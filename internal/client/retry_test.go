package client

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// flaky is a scripted handler: it answers each request with the next status
// in its script (the final entry repeats), recording what it saw.
type flaky struct {
	script []int
	n      atomic.Int64
	posts  atomic.Int64
}

func (f *flaky) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	i := int(f.n.Add(1)) - 1
	if r.Method == http.MethodPost {
		f.posts.Add(1)
	}
	if i >= len(f.script) {
		i = len(f.script) - 1
	}
	code := f.script[i]
	w.Header().Set("Content-Type", "application/json")
	if code != http.StatusOK {
		w.WriteHeader(code)
		fmt.Fprint(w, `{"error":"scripted failure"}`)
		return
	}
	fmt.Fprint(w, `{"name":"flaky","users":1,"properties":1,"groups":1}`)
}

// resilient builds a client against h with instant (recorded) sleeps.
func resilient(t *testing.T, h http.Handler, opts ResilienceOptions) (*Client, *[]time.Duration) {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	if opts.Retry.Seed == 0 {
		opts.Retry.Seed = 1
	}
	c := NewResilient(ts.URL, nil, opts)
	var slept []time.Duration
	c.retry.sleep = func(d time.Duration) { slept = append(slept, d) }
	return c, &slept
}

func TestRetryRecoversFromTransientFailures(t *testing.T) {
	f := &flaky{script: []int{503, 502, 200}}
	c, slept := resilient(t, f, ResilienceOptions{})
	st, err := c.Status()
	if err != nil {
		t.Fatalf("Status after transients: %v", err)
	}
	if st.Name != "flaky" || f.n.Load() != 3 {
		t.Fatalf("status=%+v after %d attempts", st, f.n.Load())
	}
	// Two retries, equal-jitter over 100ms/200ms: each wait lands in
	// [base/2, base) and the second is exponentially larger.
	if len(*slept) != 2 {
		t.Fatalf("slept %v, want 2 backoffs", *slept)
	}
	for i, want := range []time.Duration{100 * time.Millisecond, 200 * time.Millisecond} {
		if got := (*slept)[i]; got < want/2 || got >= want {
			t.Fatalf("backoff %d = %v, want in [%v,%v)", i, got, want/2, want)
		}
	}
}

func TestRetryHonorsRetryAfter(t *testing.T) {
	var first atomic.Bool
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if first.CompareAndSwap(false, true) {
			w.Header().Set("Retry-After", "3")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"shed"}`)
			return
		}
		fmt.Fprint(w, `{"name":"ok","users":1,"properties":1,"groups":1}`)
	})
	c, slept := resilient(t, h, ResilienceOptions{})
	if _, err := c.Status(); err != nil {
		t.Fatal(err)
	}
	if len(*slept) != 1 || (*slept)[0] != 3*time.Second {
		t.Fatalf("slept %v, want the server's 3s Retry-After", *slept)
	}
}

func TestRetryGivesUpAfterMaxAttempts(t *testing.T) {
	f := &flaky{script: []int{503}}
	c, _ := resilient(t, f, ResilienceOptions{Retry: RetryOptions{MaxAttempts: 3}})
	_, err := c.Status()
	if err == nil {
		t.Fatal("want error after exhausted attempts")
	}
	if f.n.Load() != 3 {
		t.Fatalf("made %d attempts, want 3", f.n.Load())
	}
}

func TestPostNotRetriedOn5xxWithoutOptIn(t *testing.T) {
	// A POST that died with 5xx may have been applied; repeating it without
	// the at-least-once opt-in could duplicate the mutation.
	f := &flaky{script: []int{503, 200}}
	c, _ := resilient(t, f, ResilienceOptions{})
	if _, _, err := c.AddUser("Ada", nil); err == nil {
		t.Fatal("POST 503 must surface without RetryNonIdempotent")
	}
	if f.posts.Load() != 1 {
		t.Fatalf("POST sent %d times, want 1", f.posts.Load())
	}
}

func TestPostRetriedOn429Always(t *testing.T) {
	// 429 means admission control shed the request before the writer saw it:
	// repeating is always safe, opt-in or not.
	var first atomic.Bool
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if first.CompareAndSwap(false, true) {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"queue full"}`)
			return
		}
		fmt.Fprint(w, `{"id":7,"groups":2}`)
	})
	c, _ := resilient(t, h, ResilienceOptions{})
	id, _, err := c.AddUser("Ada", nil)
	if err != nil {
		t.Fatalf("AddUser through a shed: %v", err)
	}
	if id != 7 {
		t.Fatalf("id = %d", id)
	}
}

func TestPostRetriedOn5xxWithOptIn(t *testing.T) {
	f := &flaky{script: []int{503, 200}}
	c, _ := resilient(t, f, ResilienceOptions{Retry: RetryOptions{RetryNonIdempotent: true}})
	st, err := c.Status()
	_ = st
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.AddUser("Ada", nil); err != nil {
		t.Fatalf("opted-in POST retry: %v", err)
	}
}

func TestBreakerOpensAndRecovers(t *testing.T) {
	down := atomic.Bool{}
	down.Store(true)
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprint(w, `{"error":"down"}`)
			return
		}
		fmt.Fprint(w, `{"name":"up","users":1,"properties":1,"groups":1}`)
	})
	now := time.Unix(0, 0)
	c, _ := resilient(t, h, ResilienceOptions{
		Retry:   RetryOptions{MaxAttempts: 1},
		Breaker: &BreakerOptions{Window: 8, MinSamples: 4, FailureThreshold: 0.5, Cooldown: time.Second},
	})
	c.breaker.now = func() time.Time { return now }

	// Hammer the dead server until the breaker opens.
	for i := 0; i < 4; i++ {
		if _, err := c.Status(); err == nil {
			t.Fatal("dead server answered")
		}
	}
	_, err := c.Status()
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen fail-fast", err)
	}

	// Cooldown passes while the server is still down: the single probe fails
	// and the breaker re-opens for another cooldown.
	now = now.Add(1100 * time.Millisecond)
	if _, err := c.Status(); errors.Is(err, ErrCircuitOpen) {
		t.Fatal("probe was not admitted after cooldown")
	}
	if _, err := c.Status(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("breaker did not re-open after failed probe: %v", err)
	}

	// Server recovers; next probe closes the breaker for good.
	down.Store(false)
	now = now.Add(1100 * time.Millisecond)
	if _, err := c.Status(); err != nil {
		t.Fatalf("recovery probe: %v", err)
	}
	if _, err := c.Status(); err != nil {
		t.Fatalf("closed breaker rejected: %v", err)
	}
}

func TestBreakerHalfOpenAdmitsOneProbe(t *testing.T) {
	b := newBreaker(BreakerOptions{Window: 4, MinSamples: 2, FailureThreshold: 0.5, Cooldown: time.Second}, nil)
	now := time.Unix(0, 0)
	b.now = func() time.Time { return now }
	b.record(true)
	b.record(true)
	if b.allow() {
		t.Fatal("breaker closed after 100% failures")
	}
	now = now.Add(1100 * time.Millisecond)
	if !b.allow() {
		t.Fatal("no probe admitted after cooldown")
	}
	if b.allow() {
		t.Fatal("second concurrent probe admitted")
	}
	b.record(false)
	if !b.allow() {
		t.Fatal("breaker did not close after successful probe")
	}
}

// TestBreakerHalfOpenConcurrentProbes: when the cooldown expires with many
// requests racing, exactly one becomes the probe — the rest keep failing
// fast. A thundering herd of probes would defeat the breaker's purpose
// (protecting a struggling server from exactly that herd). Race-gated: the
// probing flag is the contended state.
func TestBreakerHalfOpenConcurrentProbes(t *testing.T) {
	b := newBreaker(BreakerOptions{Window: 4, MinSamples: 2, FailureThreshold: 0.5, Cooldown: time.Second}, nil)
	var mu sync.Mutex
	now := time.Unix(0, 0)
	b.now = func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	b.record(true)
	b.record(true)
	if b.allow() {
		t.Fatal("breaker closed after 100% failures")
	}
	mu.Lock()
	now = now.Add(1100 * time.Millisecond)
	mu.Unlock()

	var admitted atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if b.allow() {
				admitted.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := admitted.Load(); got != 1 {
		t.Fatalf("half-open admitted %d concurrent probes, want exactly 1", got)
	}
	if b.currentState() != BreakerHalfOpen {
		t.Fatalf("state = %q with a probe in flight, want half-open", b.currentState())
	}
	// The single probe succeeds: the breaker closes and everyone flows again.
	b.record(false)
	if b.currentState() != BreakerClosed {
		t.Fatalf("state = %q after successful probe, want closed", b.currentState())
	}
	for i := 0; i < 4; i++ {
		if !b.allow() {
			t.Fatal("closed breaker rejected a request")
		}
	}
}

// TestBreakerHalfOpenSingleProbeOnWire is the end-to-end form: an open
// breaker whose cooldown has expired lets exactly one HTTP request reach the
// recovered server while concurrent callers fail fast with ErrCircuitOpen.
func TestBreakerHalfOpenSingleProbeOnWire(t *testing.T) {
	down := atomic.Bool{}
	down.Store(true)
	var hits atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if down.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprint(w, `{"error":"down"}`)
			return
		}
		fmt.Fprint(w, `{"name":"up","users":1,"properties":1,"groups":1}`)
	})
	c, _ := resilient(t, h, ResilienceOptions{
		Retry:   RetryOptions{MaxAttempts: 1},
		Breaker: &BreakerOptions{Window: 8, MinSamples: 4, FailureThreshold: 0.5, Cooldown: time.Second},
	})
	var mu sync.Mutex
	now := time.Unix(0, 0)
	c.breaker.now = func() time.Time { mu.Lock(); defer mu.Unlock(); return now }

	for i := 0; i < 4; i++ {
		if _, err := c.Status(); err == nil {
			t.Fatal("dead server answered")
		}
	}
	if got := c.BreakerState(); got != BreakerOpen {
		t.Fatalf("state = %q after failures, want open", got)
	}
	down.Store(false)
	mu.Lock()
	now = now.Add(1100 * time.Millisecond)
	mu.Unlock()
	before := hits.Load()

	var probeOK, failFast atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.Status()
			switch {
			case err == nil:
				probeOK.Add(1)
			case errors.Is(err, ErrCircuitOpen):
				failFast.Add(1)
			default:
				t.Errorf("unexpected error during half-open burst: %v", err)
			}
		}()
	}
	wg.Wait()
	if probeOK.Load() != 1 || failFast.Load() != 15 {
		t.Fatalf("burst: %d probes succeeded, %d failed fast — want 1/15", probeOK.Load(), failFast.Load())
	}
	if got := hits.Load() - before; got != 1 {
		t.Fatalf("server saw %d requests during half-open, want 1 (no thundering herd)", got)
	}
	if got := c.BreakerState(); got != BreakerClosed {
		t.Fatalf("state = %q after winning probe, want closed", got)
	}
}

func TestRetryScheduleDeterministicUnderSeed(t *testing.T) {
	run := func() []time.Duration {
		f := &flaky{script: []int{503, 503, 503, 200}}
		c, slept := resilient(t, f, ResilienceOptions{Retry: RetryOptions{Seed: 42}})
		if _, err := c.Status(); err != nil {
			t.Fatal(err)
		}
		return *slept
	}
	a, b := run(), run()
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("schedules %v / %v, want 3 backoffs each", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded schedules diverge: %v vs %v", a, b)
		}
	}
}
