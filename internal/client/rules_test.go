package client

import (
	"strings"
	"testing"
)

// TestClientRules: the typed discovery call mirrors the server's registry —
// the default coverage rule is listed, marked, and first.
func TestClientRules(t *testing.T) {
	c, _ := newPair(t)
	rules, err := c.Rules()
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) < 4 {
		t.Fatalf("rules = %+v, want >= 4 registered rules", rules)
	}
	if rules[0].Name != "coverage" || !rules[0].Default {
		t.Fatalf("first rule = %+v, want the default coverage rule", rules[0])
	}
	for _, r := range rules[1:] {
		if r.Default {
			t.Fatalf("non-coverage rule %q marked default", r.Name)
		}
		if r.Description == "" {
			t.Fatalf("rule %q has no description", r.Name)
		}
	}
}

// TestClientSelectRule: a typed select carrying a rule comes back stamped
// with it; the default request stays unstamped.
func TestClientSelectRule(t *testing.T) {
	c, _ := newPair(t)
	def, err := c.Select(SelectRequest{Budget: 2})
	if err != nil {
		t.Fatal(err)
	}
	if def.Rule != "" {
		t.Fatalf("default selection rule field = %q, want empty", def.Rule)
	}
	sel, err := c.Select(SelectRequest{Budget: 2, Rule: "maxcov"})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Rule != "maxcov" {
		t.Fatalf("selection rule field = %q, want maxcov", sel.Rule)
	}
	if len(sel.Users) != 2 {
		t.Fatalf("maxcov selected %d users, want 2", len(sel.Users))
	}
}

// TestClientUnknownRuleRoundTrip: the unknown-rule 400 round-trips through
// AsAPIError with its machine code and the self-correcting rule list intact —
// the regression test the error-envelope satellite asks for.
func TestClientUnknownRuleRoundTrip(t *testing.T) {
	c, _ := newPair(t)
	_, err := c.Select(SelectRequest{Budget: 2, Rule: "nope"})
	if err == nil {
		t.Fatal("unknown rule did not error")
	}
	apiErr, ok := AsAPIError(err)
	if !ok {
		t.Fatalf("error %v is not an *APIError", err)
	}
	if apiErr.Status != 400 || apiErr.Code != "invalid_argument" {
		t.Fatalf("APIError = %+v, want 400/invalid_argument", apiErr)
	}
	if !strings.Contains(apiErr.Message, `"nope"`) || !strings.Contains(apiErr.Message, "coverage") {
		t.Fatalf("message does not echo the bad rule and list registered ones: %q", apiErr.Message)
	}
}
