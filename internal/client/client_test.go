package client

import (
	"net/http/httptest"
	"strings"
	"testing"

	"podium/internal/bucketing"
	"podium/internal/groups"
	"podium/internal/profile"
	"podium/internal/server"
)

func newPair(t *testing.T) (*Client, *httptest.Server) {
	t.Helper()
	srv := server.New("paper-example", profile.PaperExample(),
		groups.Config{Method: bucketing.Fixed{Interior: []float64{0.4, 0.65}}, K: 3},
		[]server.NamedConfig{{Name: "default", Budget: 2, Weights: "LBS", Coverage: "Single"}})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return New(ts.URL, nil), ts
}

func TestClientStatus(t *testing.T) {
	c, _ := newPair(t)
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Users != 5 || st.Groups != 16 || st.Name != "paper-example" {
		t.Fatalf("status = %+v", st)
	}
}

func TestClientGroups(t *testing.T) {
	c, _ := newPair(t)
	gs, err := c.Groups(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 4 || gs[0].Size != 3 {
		t.Fatalf("groups = %+v", gs)
	}
}

func TestClientConfigurations(t *testing.T) {
	c, _ := newPair(t)
	cs, err := c.Configurations()
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 1 || cs[0].Name != "default" {
		t.Fatalf("configurations = %+v", cs)
	}
}

func TestClientSelect(t *testing.T) {
	c, _ := newPair(t)
	sel, err := c.Select(SelectRequest{Budget: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Users) != 2 || sel.Users[0].Name != "Alice" || sel.Users[1].Name != "Eve" {
		t.Fatalf("selection = %+v", sel.Users)
	}
	if sel.Score != 17 {
		t.Fatalf("score = %v", sel.Score)
	}
	if len(sel.Groups) != 16 {
		t.Fatalf("group coverage rows = %d", len(sel.Groups))
	}
}

func TestClientSelectNamedConfig(t *testing.T) {
	c, _ := newPair(t)
	sel, err := c.Select(SelectRequest{Config: "default"})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Users) != 2 {
		t.Fatalf("selection = %+v", sel.Users)
	}
}

func TestClientQuery(t *testing.T) {
	c, _ := newPair(t)
	sel, err := c.Query(`SELECT 2 USERS WHERE HAS "avgRating Mexican" DIVERSIFY BY "livesIn Tokyo", "livesIn NYC", "livesIn Bali", "livesIn Paris"`)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Users[0].Name != "Alice" || sel.Users[1].Name != "Eve" {
		t.Fatalf("query selection = %+v", sel.Users)
	}
	if sel.PriorityScore != 3 || sel.StandardScore != 14 {
		t.Fatalf("tier scores = %v/%v", sel.PriorityScore, sel.StandardScore)
	}
}

func TestClientDistribution(t *testing.T) {
	c, _ := newPair(t)
	d, err := c.Distribution("avgRating Mexican", []int{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Buckets) != 3 || d.Subset[2] != 1 {
		t.Fatalf("distribution = %+v", d)
	}
}

func TestClientSurfacesServerErrors(t *testing.T) {
	c, _ := newPair(t)
	_, err := c.Query(`garbage`)
	if err == nil || !strings.Contains(err.Error(), "HTTP 400") {
		t.Fatalf("error = %v, want HTTP 400 with message", err)
	}
	_, err = c.Distribution("no such property", nil)
	if err == nil || !strings.Contains(err.Error(), "unknown property") {
		t.Fatalf("error = %v", err)
	}
}

func TestClientMutations(t *testing.T) {
	path := t.TempDir() + "/live.plog"
	ms, err := server.NewMutable("live", path, groups.Config{K: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	ts := httptest.NewServer(ms)
	defer ts.Close()
	c := New(ts.URL, nil)

	id, ngroups, err := c.AddUser("Alice", map[string]float64{"livesIn Tokyo": 1, "avgRating Mexican": 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if id != 0 || ngroups == 0 {
		t.Fatalf("AddUser = %d, %d groups", id, ngroups)
	}
	if _, _, err := c.AddUser("Bob", map[string]float64{"avgRating Mexican": 0.2}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetScore(0, "avgRating Mexican", 0.1); err != nil {
		t.Fatal(err)
	}
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Users != 2 {
		t.Fatalf("users = %d", st.Users)
	}
	// Mutations on an immutable server are 404s surfaced as errors.
	imm, _ := newPair(t)
	if _, _, err := imm.AddUser("X", nil); err == nil {
		t.Fatal("immutable server accepted a mutation")
	}
}

func TestClientConnectionError(t *testing.T) {
	c := New("http://127.0.0.1:1", nil) // nothing listens on port 1
	if _, err := c.Status(); err == nil {
		t.Fatal("dead server produced no error")
	}
}
