package client

import (
	"encoding/json"
	"errors"
	"fmt"
)

// APIError is a decoded server error envelope:
//
//	{"error":{"code":"invalid_argument","message":"...","status":400}}
//
// Every non-200 response carrying the envelope surfaces as an *APIError, so
// callers can branch on Code or Status with errors.As instead of string
// matching. Responses from pre-envelope servers ({"error":"message"}) decode
// with an empty Code.
type APIError struct {
	// Code is the server's stable machine-readable error code
	// (e.g. "invalid_argument", "not_found", "overloaded").
	Code string
	// Message is the human-readable description.
	Message string
	// Status is the HTTP status code.
	Status int
	// Path is the API path the request targeted.
	Path string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: %s: %s (HTTP %d)", e.Path, e.Message, e.Status)
}

// AsAPIError unwraps err to an *APIError, if one is in its chain.
func AsAPIError(err error) (*APIError, bool) {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae, true
	}
	return nil, false
}

// parseAPIError decodes an error-response body into an *APIError, accepting
// both the unified envelope and the legacy flat {"error":"message"} shape.
// Returns nil when the body carries neither.
func parseAPIError(data []byte, path string, status int) *APIError {
	var env struct {
		Error json.RawMessage `json:"error"`
	}
	if json.Unmarshal(data, &env) != nil || len(env.Error) == 0 {
		return nil
	}
	var body struct {
		Code    string `json:"code"`
		Message string `json:"message"`
		Status  int    `json:"status"`
	}
	if json.Unmarshal(env.Error, &body) == nil && body.Message != "" {
		if body.Status == 0 {
			body.Status = status
		}
		return &APIError{Code: body.Code, Message: body.Message, Status: body.Status, Path: path}
	}
	var msg string
	if json.Unmarshal(env.Error, &msg) == nil && msg != "" {
		return &APIError{Message: msg, Status: status, Path: path}
	}
	return nil
}
