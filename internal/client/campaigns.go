package client

import (
	"context"
	"fmt"
	"time"
)

// CampaignRequest mirrors the server's POST /api/campaigns body. Zero-valued
// fields select server-side defaults.
type CampaignRequest struct {
	Budget        int     `json:"budget,omitempty"`
	Weights       string  `json:"weights,omitempty"`
	Coverage      string  `json:"coverage,omitempty"`
	Rule          string  `json:"rule,omitempty"`
	Seed          int64   `json:"seed,omitempty"`
	MaxRounds     int     `json:"max_rounds,omitempty"`
	MaxAttempts   int     `json:"max_attempts,omitempty"`
	TimeoutMs     float64 `json:"timeout_ms,omitempty"`
	BackoffBaseMs float64 `json:"backoff_base_ms,omitempty"`
	BackoffCapMs  float64 `json:"backoff_cap_ms,omitempty"`
	Workers       int     `json:"workers,omitempty"`
	TimeScale     float64 `json:"time_scale,omitempty"`
	Parallelism   int     `json:"parallelism,omitempty"`
	MeanLatencyMs float64 `json:"mean_latency_ms,omitempty"`
	NonResponse   float64 `json:"non_response,omitempty"`
	Decline       float64 `json:"decline,omitempty"`
}

// CampaignWave summarizes one solicitation wave of a campaign round.
type CampaignWave struct {
	Attempt   int     `json:"attempt"`
	BackoffMs float64 `json:"backoff_ms"`
	Answered  int     `json:"answered"`
	Late      int     `json:"late"`
	Silent    int     `json:"silent"`
	Declined  int     `json:"declined"`
}

// CampaignRound is one round of a campaign's transcript.
type CampaignRound struct {
	Round    int            `json:"round"`
	Repaired bool           `json:"repaired"`
	Selected []int          `json:"selected"`
	Dead     []int          `json:"dead"`
	Waves    []CampaignWave `json:"waves"`
	Coverage float64        `json:"coverage"`
}

// Campaign is the server's view of one procurement campaign. State is one of
// "running", "converged", "exhausted", "cancelled" or "failed"; Rounds is
// populated only by the per-campaign detail endpoint.
type Campaign struct {
	ID       int             `json:"id"`
	Epoch    uint64          `json:"epoch"`
	State    string          `json:"state"`
	Budget   int             `json:"budget"`
	Round    int             `json:"round"`
	Accepted []int           `json:"accepted"`
	Declined []int           `json:"declined"`
	Dead     []int           `json:"dead"`
	Pending  []int           `json:"pending"`
	Coverage float64         `json:"coverage"`
	Rounds   []CampaignRound `json:"rounds"`
	Error    string          `json:"error"`
}

// Terminal reports whether the campaign has reached a final state.
func (c Campaign) Terminal() bool { return c.State != "running" }

// CreateCampaign starts an asynchronous procurement campaign and returns its
// initial summary; poll with Campaign or WaitCampaign for progress.
func (c *Client) CreateCampaign(ctx context.Context, req CampaignRequest) (Campaign, error) {
	var out Campaign
	return out, c.post(ctx, "/api/v1/campaigns", req, &out)
}

// Campaigns lists all campaign summaries, oldest first.
func (c *Client) Campaigns(ctx context.Context) ([]Campaign, error) {
	var out []Campaign
	return out, c.get(ctx, "/api/v1/campaigns", nil, &out)
}

// Campaign fetches one campaign with its full round transcript.
func (c *Client) Campaign(ctx context.Context, id int) (Campaign, error) {
	var out Campaign
	return out, c.get(ctx, fmt.Sprintf("/api/v1/campaigns/%d", id), nil, &out)
}

// CancelCampaign asks a running campaign to stop; the campaign settles into
// the "cancelled" state at its next wave boundary.
func (c *Client) CancelCampaign(ctx context.Context, id int) (Campaign, error) {
	var out Campaign
	return out, c.post(ctx, fmt.Sprintf("/api/v1/campaigns/%d/cancel", id), struct{}{}, &out)
}

// WaitCampaign polls a campaign every poll interval (default 250ms) until it
// reaches a terminal state or ctx ends.
func (c *Client) WaitCampaign(ctx context.Context, id int, poll time.Duration) (Campaign, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		camp, err := c.Campaign(ctx, id)
		if err != nil {
			return camp, err
		}
		if camp.Terminal() {
			return camp, nil
		}
		select {
		case <-ctx.Done():
			return camp, ctx.Err()
		case <-t.C:
		}
	}
}
