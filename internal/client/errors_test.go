package client

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"podium/internal/obs"
)

func TestAPIErrorDecodesEnvelope(t *testing.T) {
	f := &flaky{script: []int{503, 200}}
	c, _ := resilient(t, f, ResilienceOptions{Retry: RetryOptions{MaxAttempts: 1}})
	_, err := c.Status()
	apiErr, ok := AsAPIError(err)
	if !ok {
		t.Fatalf("error %v is not an *APIError", err)
	}
	// The flaky handler speaks the legacy {"error":"msg"} dialect — the
	// fallback must still produce a typed error.
	if apiErr.Status != 503 || apiErr.Message != "scripted failure" {
		t.Fatalf("APIError = %+v", apiErr)
	}
	if !strings.Contains(err.Error(), "HTTP 503") {
		t.Fatalf("error string = %q", err.Error())
	}
}

func TestAPIErrorDecodesUnifiedEnvelope(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte(`{"error":{"code":"not_found","message":"unknown campaign 7","status":404}}`))
	})
	c, _ := resilient(t, h, ResilienceOptions{Retry: RetryOptions{MaxAttempts: 1}})
	_, err := c.Campaign(context.Background(), 7)
	apiErr, ok := AsAPIError(err)
	if !ok {
		t.Fatalf("error %v is not an *APIError", err)
	}
	if apiErr.Code != "not_found" || apiErr.Status != 404 || apiErr.Message != "unknown campaign 7" {
		t.Fatalf("APIError = %+v", apiErr)
	}
}

func TestClientMetricsCountRetriesAndBreaker(t *testing.T) {
	reg := obs.NewRegistry()
	met := obs.NewClientMetrics(reg)

	f := &flaky{script: []int{503, 503, 200}}
	c, _ := resilient(t, f, ResilienceOptions{
		Retry:   RetryOptions{MaxAttempts: 4, BaseBackoff: time.Millisecond},
		Breaker: &BreakerOptions{Window: 4, MinSamples: 4, FailureThreshold: 0.5, Cooldown: time.Millisecond},
		Metrics: met,
	})
	if _, err := c.Status(); err != nil {
		t.Fatalf("status: %v", err)
	}
	if got := met.Retries.Value(); got != 2 {
		t.Fatalf("retries counted = %d, want 2", got)
	}

	// Drive the breaker open, then let a probe close it; the transitions
	// land in the labeled counters.
	now := time.Now()
	c.breaker.now = func() time.Time { return now }
	c.breaker.record(true)
	c.breaker.record(true)
	if met.ToOpen.Value() != 1 {
		t.Fatalf("to=open transitions = %d, want 1", met.ToOpen.Value())
	}
	now = now.Add(2 * time.Millisecond)
	if !c.breaker.allow() {
		t.Fatal("probe not admitted after cooldown")
	}
	if met.Probes.Value() != 1 {
		t.Fatalf("probes = %d, want 1", met.Probes.Value())
	}
	c.breaker.record(false)
	if met.ToClosed.Value() != 1 {
		t.Fatalf("to=closed transitions = %d, want 1", met.ToClosed.Value())
	}
}
