package client

import (
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"podium/internal/obs"
)

// Client-side resilience: jittered-exponential-backoff retries for requests
// the server guarantees are safe to repeat, plus a rolling-window circuit
// breaker that stops hammering a server that is clearly down. Together with
// the server's admission control (429 + Retry-After) this closes the loop
// the paper's procurement model assumes at the application layer: responders
// fail and recover, and the caller keeps going.

// RetryOptions tunes the retry policy. The zero value of each field selects
// the default in parentheses.
type RetryOptions struct {
	// MaxAttempts is the total tries per request, including the first
	// (default 4; 1 disables retries).
	MaxAttempts int
	// BaseBackoff/MaxBackoff shape the capped exponential backoff between
	// attempts: attempt a waits jitter(min(Base·2^(a−1), Max)) (defaults
	// 100ms / 2s). A server-sent Retry-After overrides the computed wait.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed drives the jitter stream, so a test's retry schedule is
	// reproducible. 0 derives from the wall clock.
	Seed int64
	// RetryNonIdempotent additionally retries POSTs on transport errors and
	// 5xx responses. The server applies mutations before acknowledging, so
	// this buys at-least-once semantics: an unacknowledged mutation may have
	// been applied, and the retry may duplicate it. Callers whose mutations
	// are idempotent (unique names, absolute scores) opt in; 429 responses
	// are always retried regardless, because shed requests are never
	// applied.
	RetryNonIdempotent bool
}

func (o RetryOptions) withDefaults() RetryOptions {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 100 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 2 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = time.Now().UnixNano()
	}
	return o
}

// BreakerOptions tunes the circuit breaker. The zero value of each field
// selects the default in parentheses.
type BreakerOptions struct {
	// Window is the rolling outcome window the failure fraction is computed
	// over (default 32 outcomes).
	Window int
	// FailureThreshold opens the breaker when at least MinSamples outcomes
	// are in the window and the failure fraction reaches it (default 0.5).
	FailureThreshold float64
	// MinSamples gates opening until enough evidence exists (default 8).
	MinSamples int
	// Cooldown is how long an open breaker rejects before letting one probe
	// through (default 2s).
	Cooldown time.Duration
}

func (o BreakerOptions) withDefaults() BreakerOptions {
	if o.Window <= 0 {
		o.Window = 32
	}
	if o.FailureThreshold <= 0 {
		o.FailureThreshold = 0.5
	}
	if o.MinSamples <= 0 {
		o.MinSamples = 8
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 2 * time.Second
	}
	return o
}

// ResilienceOptions bundles the client's protective behaviors.
type ResilienceOptions struct {
	Retry RetryOptions
	// Breaker enables the circuit breaker when non-nil.
	Breaker *BreakerOptions
	// Metrics, when non-nil, counts retries, breaker state transitions and
	// half-open probes (build one with obs.NewClientMetrics on the caller's
	// registry). Nil is a no-op.
	Metrics *obs.ClientMetrics
}

// ErrCircuitOpen is returned (wrapped) when the circuit breaker rejects a
// request without sending it.
var ErrCircuitOpen = fmt.Errorf("client: circuit breaker open")

// retryPolicy is the client's configured retry behavior plus its jitter
// stream; the mutex serializes rng access across concurrent requests.
type retryPolicy struct {
	opts RetryOptions
	mu   sync.Mutex
	rng  *rand.Rand
	// sleep is swappable for tests.
	sleep func(time.Duration)
}

func newRetryPolicy(opts RetryOptions) *retryPolicy {
	opts = opts.withDefaults()
	return &retryPolicy{
		opts:  opts,
		rng:   rand.New(rand.NewSource(opts.Seed)),
		sleep: time.Sleep,
	}
}

// backoff computes the jittered wait before the given retry (attempt ≥ 1 is
// the first retry): equal-jitter over the capped exponential — half fixed,
// half uniform — so synchronized clients spread out without ever retrying
// immediately.
func (p *retryPolicy) backoff(attempt int) time.Duration {
	d := p.opts.BaseBackoff << (attempt - 1)
	if d > p.opts.MaxBackoff || d <= 0 {
		d = p.opts.MaxBackoff
	}
	p.mu.Lock()
	j := p.rng.Float64()
	p.mu.Unlock()
	return d/2 + time.Duration(j*float64(d/2))
}

// retryAfter parses a Retry-After header (seconds form) from a response.
func retryAfter(resp *http.Response) (time.Duration, bool) {
	if resp == nil {
		return 0, false
	}
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0, false
	}
	return time.Duration(secs) * time.Second, true
}

// retriableStatus reports whether a status code indicates a transient
// server-side condition worth retrying.
func retriableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// breaker is a rolling-window circuit breaker: closed it records outcomes in
// a ring; once the window holds MinSamples and the failure fraction reaches
// the threshold it opens, rejecting requests for Cooldown; then a single
// half-open probe decides between closing (success) and re-opening.
type breaker struct {
	opts BreakerOptions
	now  func() time.Time
	met  *obs.ClientMetrics

	mu       sync.Mutex
	ring     []bool // true = failure
	size     int    // filled entries
	next     int    // ring cursor
	failures int
	state    breakerState
	openedAt time.Time
	probing  bool
}

type breakerState uint8

const (
	breakerClosed breakerState = iota
	breakerOpen
)

// BreakerState is the externally visible circuit state, exported so callers
// holding many clients (the shard coordinator's replica registry) can fold
// breaker observations into their own health model.
type BreakerState string

const (
	// BreakerNone: the client was built without a breaker.
	BreakerNone BreakerState = "none"
	// BreakerClosed: requests flow normally.
	BreakerClosed BreakerState = "closed"
	// BreakerOpen: requests fail fast until the cooldown expires.
	BreakerOpen BreakerState = "open"
	// BreakerHalfOpen: the cooldown has expired — the next request (or the
	// one already in flight) is the probe deciding open vs closed.
	BreakerHalfOpen BreakerState = "half-open"
)

// currentState classifies the breaker for external observers.
func (b *breaker) currentState() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerClosed {
		return BreakerClosed
	}
	if b.probing || b.now().Sub(b.openedAt) >= b.opts.Cooldown {
		return BreakerHalfOpen
	}
	return BreakerOpen
}

func newBreaker(opts BreakerOptions, met *obs.ClientMetrics) *breaker {
	opts = opts.withDefaults()
	if met == nil {
		met = &obs.ClientMetrics{} // zero family: every counter is a no-op
	}
	return &breaker{opts: opts, ring: make([]bool, opts.Window), now: time.Now, met: met}
}

// allow reports whether a request may proceed. In the open state one probe
// is admitted per cooldown expiry; its outcome decides the next state.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerClosed {
		return true
	}
	if b.now().Sub(b.openedAt) < b.opts.Cooldown || b.probing {
		return false
	}
	b.probing = true
	b.met.Probes.Inc()
	return true
}

// record feeds one request outcome back into the breaker.
func (b *breaker) record(failed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.probing {
		b.probing = false
		if failed {
			// Probe failed: stay open for another cooldown (counted as a
			// fresh transition to open — the cooldown re-arms).
			b.openedAt = b.now()
			b.met.ToOpen.Inc()
			return
		}
		// Probe succeeded: close with a clean window.
		b.state = breakerClosed
		b.size, b.next, b.failures = 0, 0, 0
		b.met.ToClosed.Inc()
		return
	}
	if b.state == breakerOpen {
		return
	}
	if b.size == len(b.ring) {
		if b.ring[b.next] {
			b.failures--
		}
	} else {
		b.size++
	}
	b.ring[b.next] = failed
	if failed {
		b.failures++
	}
	b.next = (b.next + 1) % len(b.ring)
	if b.size >= b.opts.MinSamples &&
		float64(b.failures) >= b.opts.FailureThreshold*float64(b.size) {
		b.state = breakerOpen
		b.openedAt = b.now()
		b.met.ToOpen.Inc()
	}
}
