// Package client is a typed Go client for the Podium HTTP API
// (internal/server): status, group listing, named configurations, plain and
// customized selection, declarative queries and distribution comparisons.
// External integrations — a survey tool, a CRM — would talk to a Podium
// deployment through exactly these calls.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"podium/internal/obs"
	"podium/internal/server"
)

// DefaultTimeout bounds every request issued through a context without its
// own deadline, so a wedged server cannot hang a caller forever.
const DefaultTimeout = 30 * time.Second

// Client talks to one Podium server.
type Client struct {
	baseURL string
	http    *http.Client
	timeout time.Duration
	// retry and breaker are nil on a plain client; NewResilient sets them.
	retry   *retryPolicy
	breaker *breaker
	// met counts retries and breaker transitions; always non-nil — without a
	// registry it is the zero family, a no-op end to end.
	met *obs.ClientMetrics
}

// New builds a client for the server at baseURL (e.g. "http://127.0.0.1:8080").
// httpClient may be nil for http.DefaultClient. Requests carry DefaultTimeout
// unless the caller's context brings its own deadline; see NewWithTimeout.
func New(baseURL string, httpClient *http.Client) *Client {
	return NewWithTimeout(baseURL, httpClient, DefaultTimeout)
}

// NewWithTimeout is New with an explicit per-request timeout. timeout <= 0
// disables the client-side deadline entirely.
func NewWithTimeout(baseURL string, httpClient *http.Client, timeout time.Duration) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{baseURL: strings.TrimRight(baseURL, "/"), http: httpClient,
		timeout: timeout, met: &obs.ClientMetrics{}}
}

// NewResilient is New plus retries and (optionally) a circuit breaker:
// transient failures — transport errors, 5xx, and the hardened server's 429
// admission-control responses — are retried with jittered exponential
// backoff, honoring a server-sent Retry-After. GETs retry on everything
// transient; POSTs retry only on 429 (never applied) unless
// opts.Retry.RetryNonIdempotent opts into at-least-once semantics.
func NewResilient(baseURL string, httpClient *http.Client, opts ResilienceOptions) *Client {
	c := New(baseURL, httpClient)
	c.retry = newRetryPolicy(opts.Retry)
	if opts.Metrics != nil {
		c.met = opts.Metrics
	}
	if opts.Breaker != nil {
		c.breaker = newBreaker(*opts.Breaker, c.met)
	}
	return c
}

// Status is the dataset shape the server reports.
type Status struct {
	Name       string `json:"name"`
	Users      int    `json:"users"`
	Properties int    `json:"properties"`
	Groups     int    `json:"groups"`
	// Epoch is the server's published snapshot epoch (0 on servers predating
	// the field). The shard coordinator surfaces it per shard in merged
	// selections.
	Epoch uint64 `json:"epoch"`
}

// GroupInfo is one row of the server's group list.
type GroupInfo struct {
	ID     int     `json:"id"`
	Label  string  `json:"label"`
	Size   int     `json:"size"`
	Weight float64 `json:"weight"`
}

// SelectedUser is one selected user with its explanation digest.
type SelectedUser struct {
	ID        int      `json:"id"`
	Name      string   `json:"name"`
	Marginal  float64  `json:"marginal"`
	TopGroups []string `json:"top_groups"`
}

// GroupCoverage is the subset-group explanation of one group.
type GroupCoverage struct {
	ID       int     `json:"id"`
	Label    string  `json:"label"`
	Weight   float64 `json:"weight"`
	Required int     `json:"required"`
	Actual   int     `json:"actual"`
	Covered  bool    `json:"covered"`
}

// Selection is a full selection response.
type Selection struct {
	Users []SelectedUser `json:"users"`
	Score float64        `json:"score"`
	// Rule names the selection rule the server ran under; empty means the
	// default coverage rule (the server omits the field for it).
	Rule          string          `json:"rule,omitempty"`
	TopKCovered   int             `json:"top_k_covered"`
	TopK          int             `json:"top_k"`
	PriorityScore float64         `json:"priority_score"`
	StandardScore float64         `json:"standard_score"`
	Groups        []GroupCoverage `json:"groups"`
	// Degraded and Shards are set only by a shard coordinator: Degraded
	// marks a merge that lost ≥1 shard's winners to a fan-out failure, and
	// Shards reports each shard's health and snapshot epoch.
	Degraded bool          `json:"degraded,omitempty"`
	Shards   []ShardReport `json:"shards,omitempty"`
}

// ShardReport is the coordinator's per-shard record attached to a merged
// selection.
type ShardReport struct {
	URL     string `json:"url"`
	Epoch   uint64 `json:"epoch"`
	OK      bool   `json:"ok"`
	Winners int    `json:"winners"`
	Error   string `json:"error,omitempty"`
}

// SelectRequest mirrors the server's selection request body.
type SelectRequest struct {
	Budget   int                 `json:"budget,omitempty"`
	Weights  string              `json:"weights,omitempty"`
	Coverage string              `json:"coverage,omitempty"`
	Rule     string              `json:"rule,omitempty"`
	Feedback server.FeedbackJSON `json:"feedback,omitempty"`
	Config   string              `json:"config,omitempty"`
	TopK     int                 `json:"top_k,omitempty"`
}

// RuleInfo is one row of the server's selection-rule registry
// (GET /api/v1/rules).
type RuleInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Default     bool   `json:"default,omitempty"`
}

// Distribution compares a property's bucket distribution between the
// population and a subset.
type Distribution struct {
	Property string    `json:"property"`
	Buckets  []string  `json:"buckets"`
	All      []float64 `json:"all"`
	Subset   []float64 `json:"subset"`
}

// Status fetches the dataset shape.
func (c *Client) Status() (Status, error) {
	return c.StatusCtx(context.Background())
}

// StatusCtx is Status with caller-controlled cancellation: the shard
// coordinator's health registry probes replicas on a deadline, and its router
// cancels the losing half of a hedged pair mid-flight.
func (c *Client) StatusCtx(ctx context.Context) (Status, error) {
	var s Status
	return s, c.get(ctx, "/api/v1/status", nil, &s)
}

// Groups lists the largest groups, up to limit (0 = server default).
func (c *Client) Groups(limit int) ([]GroupInfo, error) {
	q := url.Values{}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	var gs []GroupInfo
	return gs, c.get(context.Background(), "/api/v1/groups", q, &gs)
}

// Configurations lists the administrator-provided named configurations.
func (c *Client) Configurations() ([]server.NamedConfig, error) {
	var cs []server.NamedConfig
	return cs, c.get(context.Background(), "/api/v1/configurations", nil, &cs)
}

// Rules lists the selection rules the server's objective registry offers
// (GET /api/v1/rules); exactly one row is marked Default.
func (c *Client) Rules() ([]RuleInfo, error) {
	var rs []RuleInfo
	return rs, c.get(context.Background(), "/api/v1/rules", nil, &rs)
}

// Select runs a selection.
func (c *Client) Select(req SelectRequest) (Selection, error) {
	return c.SelectCtx(context.Background(), req)
}

// SelectCtx is Select with caller-controlled cancellation — the primitive the
// coordinator's hedged fan-out is built on: first success wins, the loser's
// context is cancelled and its connection released.
func (c *Client) SelectCtx(ctx context.Context, req SelectRequest) (Selection, error) {
	var sel Selection
	return sel, c.post(ctx, "/api/v1/select", req, &sel)
}

// BaseURL reports the server this client targets.
func (c *Client) BaseURL() string { return c.baseURL }

// Ready performs one uninstrumented GET /readyz probe: no retries, no
// breaker participation. Health registries probe through this so a probe
// can never be amplified into a retry storm against a struggling server,
// and so probe outcomes stay separate from the traffic the breaker judges.
func (c *Client) Ready(ctx context.Context) error {
	ctx, cancel := c.withDeadline(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+"/readyz", nil)
	if err != nil {
		return fmt.Errorf("client: readyz: %w", err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("client: readyz: %w", err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("client: readyz: HTTP %d", resp.StatusCode)
	}
	return nil
}

// BreakerState exposes the circuit breaker's current state as a passive
// health signal: a replica whose breaker is open is known-bad without
// spending a probe on it. Clients built without a breaker report
// BreakerNone.
func (c *Client) BreakerState() BreakerState {
	if c.breaker == nil {
		return BreakerNone
	}
	return c.breaker.currentState()
}

// Query runs a declarative-language selection.
func (c *Client) Query(queryText string) (Selection, error) {
	var sel Selection
	body := struct {
		Query string `json:"query"`
	}{queryText}
	return sel, c.post(context.Background(), "/api/v1/query", body, &sel)
}

// AddUser creates a user with an initial profile on a mutable server
// (POST /api/v1/users). It returns the new user's ID and group count.
func (c *Client) AddUser(name string, properties map[string]float64) (id, groups int, err error) {
	body := struct {
		Name       string             `json:"name"`
		Properties map[string]float64 `json:"properties,omitempty"`
	}{name, properties}
	var resp struct {
		ID     int `json:"id"`
		Groups int `json:"groups"`
	}
	if err := c.post(context.Background(), "/api/v1/users", body, &resp); err != nil {
		return 0, 0, err
	}
	return resp.ID, resp.Groups, nil
}

// SetScore updates one property score on a mutable server
// (POST /api/v1/scores).
func (c *Client) SetScore(user int, label string, score float64) error {
	body := struct {
		User  int     `json:"user"`
		Label string  `json:"label"`
		Score float64 `json:"score"`
	}{user, label, score}
	var resp struct {
		Status string `json:"status"`
	}
	return c.post(context.Background(), "/api/v1/scores", body, &resp)
}

// Distribution fetches a property's population-versus-subset distribution.
func (c *Client) Distribution(property string, users []int) (Distribution, error) {
	q := url.Values{}
	q.Set("prop", property)
	if len(users) > 0 {
		parts := make([]string, len(users))
		for i, u := range users {
			parts[i] = strconv.Itoa(u)
		}
		q.Set("users", strings.Join(parts, ","))
	}
	var d Distribution
	return d, c.get(context.Background(), "/api/v1/distribution", q, &d)
}

// withDeadline applies the client's default timeout when ctx has no deadline
// of its own. The returned cancel must run after the response body is read.
func (c *Client) withDeadline(ctx context.Context) (context.Context, context.CancelFunc) {
	if _, ok := ctx.Deadline(); ok || c.timeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, c.timeout)
}

func (c *Client) get(ctx context.Context, path string, query url.Values, out interface{}) error {
	u := c.baseURL + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	return c.do(ctx, http.MethodGet, path, u, nil, out)
}

func (c *Client) post(ctx context.Context, path string, body, out interface{}) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("client: encoding %s request: %w", path, err)
	}
	return c.do(ctx, http.MethodPost, path, c.baseURL+path, payload, out)
}

// do performs one logical request, retrying transient failures when the
// client is resilient. Each attempt gets a fresh body reader and its own
// deadline; the breaker sees one outcome per attempt.
func (c *Client) do(ctx context.Context, method, path, url string, payload []byte, out interface{}) error {
	attempts := 1
	if c.retry != nil {
		attempts = c.retry.opts.MaxAttempts
	}
	var lastErr error
	for a := 1; a <= attempts; a++ {
		if c.breaker != nil && !c.breaker.allow() {
			// An open breaker fails fast without burning an attempt's
			// backoff — the cooldown is the backoff.
			return fmt.Errorf("client: %s %s: %w", method, path, ErrCircuitOpen)
		}
		resp, err := c.attempt(ctx, method, url, payload)
		if err != nil {
			if c.breaker != nil {
				c.breaker.record(true)
			}
			lastErr = fmt.Errorf("client: %s %s: %w", method, path, err)
			if !c.canRetry(method, 0) || a == attempts || ctx.Err() != nil {
				return lastErr
			}
			c.met.Retries.Inc()
			c.retry.sleep(c.retry.backoff(a))
			continue
		}
		if retriableStatus(resp.StatusCode) && c.canRetry(method, resp.StatusCode) && a < attempts {
			if c.breaker != nil {
				c.breaker.record(true)
			}
			wait, ok := retryAfter(resp)
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
			resp.Body.Close()
			lastErr = fmt.Errorf("client: %s %s: HTTP %d", method, path, resp.StatusCode)
			if !ok {
				wait = c.retry.backoff(a)
			}
			c.met.Retries.Inc()
			c.retry.sleep(wait)
			continue
		}
		if c.breaker != nil {
			c.breaker.record(resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests)
		}
		return decode(resp, path, out)
	}
	return lastErr
}

// attempt issues one HTTP exchange.
func (c *Client) attempt(ctx context.Context, method, url string, payload []byte) (*http.Response, error) {
	ctx, cancel := c.withDeadline(ctx)
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		cancel()
		return nil, err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	// The cancel must outlive the body read; tie it to Body.Close.
	resp.Body = cancelOnClose{resp.Body, cancel}
	return resp, nil
}

// cancelOnClose releases an attempt's deadline context when its response
// body is closed.
type cancelOnClose struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (c cancelOnClose) Close() error {
	err := c.ReadCloser.Close()
	c.cancel()
	return err
}

// canRetry decides whether a failed attempt may be repeated. status 0 means
// a transport error (no response). 429 is always safe: the server sheds
// before applying. Everything else is safe for GETs; POSTs need the
// RetryNonIdempotent opt-in because the mutation may have been applied
// before the failure.
func (c *Client) canRetry(method string, status int) bool {
	if c.retry == nil {
		return false
	}
	if status == http.StatusTooManyRequests {
		return true
	}
	return method == http.MethodGet || c.retry.opts.RetryNonIdempotent
}

func decode(resp *http.Response, path string, out interface{}) error {
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("client: reading %s response: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		if ae := parseAPIError(data, path, resp.StatusCode); ae != nil {
			return ae
		}
		return fmt.Errorf("client: %s: HTTP %d", path, resp.StatusCode)
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("client: decoding %s response: %w", path, err)
	}
	return nil
}
