// Package repolog persists a profile repository as a log-structured store:
// an append-only file of checksummed mutation records (add-user, set-score)
// with periodic snapshot compaction. This is the durability substrate behind
// Section 9's operational story — Podium "applies to a given user repository
// as-is and may be easily executed multiple times, e.g., to incorporate data
// updates": the platform appends profile mutations as they happen, and every
// selection run opens the log and replays it into an in-memory repository.
//
// File layout:
//
//	magic "PLOG" | format version (1 byte) | record*
//	record := kind (1 byte) | payload | crc32(kind‖payload) (4 bytes LE)
//
// Record kinds: snapshot (a full repository in the internal/codec binary
// format, length-prefixed), add-user, set-score. Replay follows WAL
// convention: a torn or corrupted tail — the signature of a crash mid-append
// — is truncated and reported; everything before it is recovered.
package repolog

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"podium/internal/codec"
	"podium/internal/profile"
)

const (
	logMagic   = "PLOG"
	logVersion = 1

	recSnapshot byte = 1
	recAddUser  byte = 2
	recSetScore byte = 3

	// maxRecordLen bounds a single record; snapshots of huge repositories
	// dominate, so this is generous.
	maxRecordLen = 1 << 30
)

// Log is an open repository log. It is not safe for concurrent use; callers
// serialize access (the HTTP server builds its immutable index from a
// snapshot instead of holding the log open).
type Log struct {
	path string
	f    *os.File
	w    *bufio.Writer
	repo *profile.Repository
	// appended counts mutation records since the last snapshot, for
	// compaction heuristics.
	appended int
	// detached is set once an Append* method is used: the caller owns the
	// authoritative repository and l.repo is no longer maintained, so
	// Compact (which snapshots l.repo) must be replaced by CompactWith.
	detached bool
	// Recovered reports how many trailing bytes were discarded as a torn
	// tail during Open.
	Recovered int64
}

// Open opens (or creates) the log at path and replays it into memory.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("repolog: %w", err)
	}
	l := &Log{path: path, f: f, repo: profile.NewRepository()}
	if err := l.replay(); err != nil {
		f.Close()
		return nil, err
	}
	l.w = bufio.NewWriter(f)
	return l, nil
}

// replay loads the file, handling the empty (fresh) case, and truncates any
// torn tail.
func (l *Log) replay() error {
	info, err := l.f.Stat()
	if err != nil {
		return fmt.Errorf("repolog: %w", err)
	}
	if info.Size() == 0 {
		// Fresh log: write the header.
		if _, err := l.f.WriteString(logMagic); err != nil {
			return fmt.Errorf("repolog: writing header: %w", err)
		}
		if _, err := l.f.Write([]byte{logVersion}); err != nil {
			return fmt.Errorf("repolog: writing header: %w", err)
		}
		return nil
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("repolog: %w", err)
	}
	r := bufio.NewReader(l.f)
	head := make([]byte, len(logMagic)+1)
	if _, err := io.ReadFull(r, head); err != nil {
		return fmt.Errorf("repolog: reading header: %w", err)
	}
	if string(head[:len(logMagic)]) != logMagic {
		return fmt.Errorf("repolog: %s is not a repository log", l.path)
	}
	if head[len(logMagic)] != logVersion {
		return fmt.Errorf("repolog: unsupported log version %d", head[len(logMagic)])
	}
	valid := int64(len(head))
	for {
		rec, n, err := readRecord(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Torn tail: keep the valid prefix, drop the rest.
			l.Recovered = info.Size() - valid
			break
		}
		if err := l.apply(rec); err != nil {
			return err
		}
		valid += n
	}
	if l.Recovered > 0 {
		if err := l.f.Truncate(valid); err != nil {
			return fmt.Errorf("repolog: truncating torn tail: %w", err)
		}
	}
	if _, err := l.f.Seek(valid, io.SeekStart); err != nil {
		return fmt.Errorf("repolog: %w", err)
	}
	return nil
}

// record is a decoded log record.
type record struct {
	kind    byte
	payload []byte
}

func readRecord(r *bufio.Reader) (record, int64, error) {
	kind, err := r.ReadByte()
	if err != nil {
		return record{}, 0, io.EOF
	}
	plen, lenBytes, err := readUvarintCounted(r)
	if err != nil {
		return record{}, 0, fmt.Errorf("repolog: record length: %w", err)
	}
	if plen > maxRecordLen {
		return record{}, 0, fmt.Errorf("repolog: record of %d bytes exceeds limit", plen)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return record{}, 0, fmt.Errorf("repolog: record payload: %w", err)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return record{}, 0, fmt.Errorf("repolog: record checksum: %w", err)
	}
	sum := crc32.NewIEEE()
	sum.Write([]byte{kind})
	sum.Write(payload)
	if binary.LittleEndian.Uint32(crcBuf[:]) != sum.Sum32() {
		return record{}, 0, fmt.Errorf("repolog: checksum mismatch")
	}
	total := int64(1) + int64(lenBytes) + int64(plen) + 4
	return record{kind: kind, payload: payload}, total, nil
}

func readUvarintCounted(r *bufio.Reader) (uint64, int, error) {
	var v uint64
	var shift, n int
	for {
		b, err := r.ReadByte()
		if err != nil {
			return 0, n, err
		}
		n++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, n, nil
		}
		shift += 7
		if shift > 63 {
			return 0, n, fmt.Errorf("varint overflow")
		}
	}
}

// apply folds one record into the in-memory repository.
func (l *Log) apply(rec record) error {
	p := bytes.NewReader(rec.payload)
	switch rec.kind {
	case recSnapshot:
		repo, err := codec.ReadRepository(p)
		if err != nil {
			return fmt.Errorf("repolog: snapshot: %w", err)
		}
		l.repo = repo
		return nil
	case recAddUser:
		name, err := decodeString(p)
		if err != nil {
			return fmt.Errorf("repolog: add-user: %w", err)
		}
		l.repo.AddUser(name)
		return nil
	case recSetScore:
		u, err := binary.ReadUvarint(p)
		if err != nil {
			return fmt.Errorf("repolog: set-score user: %w", err)
		}
		label, err := decodeString(p)
		if err != nil {
			return fmt.Errorf("repolog: set-score label: %w", err)
		}
		var bits [8]byte
		if _, err := io.ReadFull(p, bits[:]); err != nil {
			return fmt.Errorf("repolog: set-score value: %w", err)
		}
		score := math.Float64frombits(binary.LittleEndian.Uint64(bits[:]))
		if err := l.repo.SetScore(profile.UserID(u), label, score); err != nil {
			return fmt.Errorf("repolog: %w", err)
		}
		return nil
	}
	return fmt.Errorf("repolog: unknown record kind %d", rec.kind)
}

// Repository returns the in-memory replayed repository. It is owned by the
// log; callers mutate it only through AddUser/SetScore.
func (l *Log) Repository() *profile.Repository { return l.repo }

// Appended reports the number of mutation records since the last snapshot —
// the input to a caller's compaction policy.
func (l *Log) Appended() int { return l.appended }

// AddUser appends a user durably and returns its ID.
func (l *Log) AddUser(name string) (profile.UserID, error) {
	var payload bytes.Buffer
	encodeString(&payload, name)
	if err := l.append(recAddUser, payload.Bytes()); err != nil {
		return 0, err
	}
	l.appended++
	return l.repo.AddUser(name), nil
}

// SetScore appends a score mutation durably. Validation happens before the
// write so an invalid score never reaches the log.
func (l *Log) SetScore(u profile.UserID, label string, score float64) error {
	if math.IsNaN(score) || score < 0 || score > 1 {
		return fmt.Errorf("repolog: score %v for %q outside [0,1]", score, label)
	}
	if int(u) < 0 || int(u) >= l.repo.NumUsers() {
		return fmt.Errorf("repolog: unknown user %d", u)
	}
	if err := l.append(recSetScore, encodeSetScore(u, label, score)); err != nil {
		return err
	}
	l.appended++
	return l.repo.SetScore(u, label, score)
}

// AppendAddUser stages an add-user record in the write buffer without
// applying it to the replayed repository — the batched path for callers that
// maintain their own authoritative repository view (the snapshot server's
// single-writer apply loop). The record becomes durable at the next Sync;
// staging a whole mutation batch and syncing once amortizes the fsync.
// After the first Append* call the log is detached: use CompactWith, not
// Compact.
func (l *Log) AppendAddUser(name string) error {
	var payload bytes.Buffer
	encodeString(&payload, name)
	if err := l.append(recAddUser, payload.Bytes()); err != nil {
		return err
	}
	l.appended++
	l.detached = true
	return nil
}

// AppendSetScore stages a set-score record without applying it to the
// replayed repository. The score is validated here so an invalid value never
// reaches the log; the caller guarantees u is a valid user of its own
// repository (replay re-validates against the reconstructed population).
func (l *Log) AppendSetScore(u profile.UserID, label string, score float64) error {
	if math.IsNaN(score) || score < 0 || score > 1 {
		return fmt.Errorf("repolog: score %v for %q outside [0,1]", score, label)
	}
	if int(u) < 0 {
		return fmt.Errorf("repolog: negative user %d", u)
	}
	if err := l.append(recSetScore, encodeSetScore(u, label, score)); err != nil {
		return err
	}
	l.appended++
	l.detached = true
	return nil
}

// encodeSetScore builds the set-score record payload.
func encodeSetScore(u profile.UserID, label string, score float64) []byte {
	var payload bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	payload.Write(tmp[:binary.PutUvarint(tmp[:], uint64(u))])
	encodeString(&payload, label)
	var bits [8]byte
	binary.LittleEndian.PutUint64(bits[:], math.Float64bits(score))
	payload.Write(bits[:])
	return payload.Bytes()
}

func (l *Log) append(kind byte, payload []byte) error {
	if err := l.w.WriteByte(kind); err != nil {
		return fmt.Errorf("repolog: %w", err)
	}
	var tmp [binary.MaxVarintLen64]byte
	if _, err := l.w.Write(tmp[:binary.PutUvarint(tmp[:], uint64(len(payload)))]); err != nil {
		return fmt.Errorf("repolog: %w", err)
	}
	if _, err := l.w.Write(payload); err != nil {
		return fmt.Errorf("repolog: %w", err)
	}
	sum := crc32.NewIEEE()
	sum.Write([]byte{kind})
	sum.Write(payload)
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], sum.Sum32())
	if _, err := l.w.Write(crcBuf[:]); err != nil {
		return fmt.Errorf("repolog: %w", err)
	}
	return nil
}

// Sync flushes buffered records and fsyncs the file.
func (l *Log) Sync() error {
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("repolog: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("repolog: %w", err)
	}
	return nil
}

// Compact rewrites the log as a single snapshot record, atomically via a
// temp file + rename, and reopens the write handle on the new file. It
// snapshots the log's replayed repository, so it refuses to run once the
// append-only API has detached that repository from the true state — use
// CompactWith with the authoritative repository instead.
func (l *Log) Compact() error {
	if l.detached {
		return fmt.Errorf("repolog: log has append-only records; use CompactWith")
	}
	return l.CompactWith(l.repo)
}

// CompactWith rewrites the log as a single snapshot of repo — the caller's
// authoritative current state, for users of the append-only API. The given
// repository becomes the log's replayed repository.
func (l *Log) CompactWith(repo *profile.Repository) error {
	l.repo = repo
	if err := l.Sync(); err != nil {
		return err
	}
	tmpPath := l.path + ".compact"
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return fmt.Errorf("repolog: %w", err)
	}
	bw := bufio.NewWriter(tmp)
	if _, err := bw.WriteString(logMagic); err != nil {
		return fmt.Errorf("repolog: %w", err)
	}
	if err := bw.WriteByte(logVersion); err != nil {
		return fmt.Errorf("repolog: %w", err)
	}
	var snap bytes.Buffer
	if err := codec.WriteRepository(&snap, l.repo); err != nil {
		return fmt.Errorf("repolog: snapshot: %w", err)
	}
	old := l.w
	l.w = bw
	err = l.append(recSnapshot, snap.Bytes())
	l.w = old
	if err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("repolog: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("repolog: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("repolog: %w", err)
	}
	if err := os.Rename(tmpPath, l.path); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("repolog: %w", err)
	}
	// Durable rename on the containing directory (best effort on platforms
	// without directory fsync).
	if dir, err := os.Open(filepath.Dir(l.path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	// Reopen the handle on the new inode, positioned at the end.
	newF, err := os.OpenFile(l.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("repolog: reopening after compaction: %w", err)
	}
	if _, err := newF.Seek(0, io.SeekEnd); err != nil {
		newF.Close()
		return fmt.Errorf("repolog: %w", err)
	}
	l.f.Close()
	l.f = newF
	l.w = bufio.NewWriter(newF)
	l.appended = 0
	l.detached = false
	return nil
}

// Close flushes and closes the log.
func (l *Log) Close() error {
	if err := l.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

func encodeString(buf *bytes.Buffer, s string) {
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(len(s)))])
	buf.WriteString(s)
}

func decodeString(r *bytes.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > 1<<16 {
		return "", fmt.Errorf("string length %d exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
