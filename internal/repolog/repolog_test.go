package repolog

import (
	"os"
	"path/filepath"
	"testing"

	"podium/internal/profile"
)

func openTemp(t *testing.T) (*Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "repo.plog")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return l, path
}

func reopen(t *testing.T, l *Log, path string) *Log {
	t.Helper()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func TestFreshLogIsEmpty(t *testing.T) {
	l, _ := openTemp(t)
	defer l.Close()
	if l.Repository().NumUsers() != 0 || l.Recovered != 0 {
		t.Fatalf("fresh log: %d users, recovered %d", l.Repository().NumUsers(), l.Recovered)
	}
}

func TestAppendAndReplay(t *testing.T) {
	l, path := openTemp(t)
	alice, err := l.AddUser("Alice")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SetScore(alice, "livesIn Tokyo", 1); err != nil {
		t.Fatal(err)
	}
	if err := l.SetScore(alice, "avgRating Mexican", 0.95); err != nil {
		t.Fatal(err)
	}
	bob, err := l.AddUser("Bob")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SetScore(bob, "avgRating Mexican", 0.3); err != nil {
		t.Fatal(err)
	}

	back := reopen(t, l, path)
	defer back.Close()
	repo := back.Repository()
	if repo.NumUsers() != 2 {
		t.Fatalf("users = %d", repo.NumUsers())
	}
	if repo.UserName(0) != "Alice" || repo.UserName(1) != "Bob" {
		t.Fatalf("names = %q, %q", repo.UserName(0), repo.UserName(1))
	}
	id, ok := repo.Catalog().Lookup("avgRating Mexican")
	if !ok {
		t.Fatal("property lost")
	}
	if s, ok := repo.Profile(0).Score(id); !ok || s != 0.95 {
		t.Fatalf("Alice's score = %v,%v", s, ok)
	}
	if back.Recovered != 0 {
		t.Fatalf("clean log reported %d recovered bytes", back.Recovered)
	}
}

func TestSetScoreValidation(t *testing.T) {
	l, _ := openTemp(t)
	defer l.Close()
	u, _ := l.AddUser("A")
	if err := l.SetScore(u, "p", 1.5); err == nil {
		t.Fatal("invalid score accepted")
	}
	if err := l.SetScore(profile.UserID(99), "p", 0.5); err == nil {
		t.Fatal("unknown user accepted")
	}
	// The rejected writes must not have reached the log.
	path := l.path
	back := reopen(t, l, path)
	defer back.Close()
	if back.Repository().Profile(0).Len() != 0 {
		t.Fatal("rejected mutation was persisted")
	}
}

func TestLastWriteWinsAcrossReplay(t *testing.T) {
	l, path := openTemp(t)
	u, _ := l.AddUser("A")
	for _, s := range []float64{0.1, 0.5, 0.9} {
		if err := l.SetScore(u, "p", s); err != nil {
			t.Fatal(err)
		}
	}
	back := reopen(t, l, path)
	defer back.Close()
	id, _ := back.Repository().Catalog().Lookup("p")
	if s, _ := back.Repository().Profile(0).Score(id); s != 0.9 {
		t.Fatalf("score after replay = %v, want 0.9", s)
	}
}

func TestTornTailRecovery(t *testing.T) {
	l, path := openTemp(t)
	u, _ := l.AddUser("A")
	if err := l.SetScore(u, "p", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append at every possible torn point past the
	// first record: the log must reopen, recovering a valid prefix, and
	// stay usable.
	for cut := len(clean) - 1; cut > 20; cut -= 3 {
		if err := os.WriteFile(path, clean[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		back, err := Open(path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if back.Recovered == 0 {
			t.Fatalf("cut %d: no recovery reported", cut)
		}
		// The torn log remains appendable.
		if _, err := back.AddUser("post-crash"); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		if err := back.Close(); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		again, err := Open(path)
		if err != nil {
			t.Fatalf("cut %d: reopen after recovery: %v", cut, err)
		}
		found := false
		for uu := 0; uu < again.Repository().NumUsers(); uu++ {
			if again.Repository().UserName(profile.UserID(uu)) == "post-crash" {
				found = true
			}
		}
		if !found {
			t.Fatalf("cut %d: post-recovery append lost", cut)
		}
		again.Close()
	}
}

func TestCorruptTailStopsReplay(t *testing.T) {
	l, path := openTemp(t)
	u, _ := l.AddUser("A")
	l.SetScore(u, "p", 0.5)
	l.AddUser("B")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	// Flip a byte in the last record's payload: checksum fails, replay keeps
	// the prefix.
	data[len(data)-3] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if back.Recovered == 0 {
		t.Fatal("corruption not detected")
	}
	if back.Repository().NumUsers() != 1 {
		t.Fatalf("users = %d, want the pre-corruption prefix", back.Repository().NumUsers())
	}
}

func TestCompact(t *testing.T) {
	l, path := openTemp(t)
	for i := 0; i < 20; i++ {
		u, _ := l.AddUser("user")
		l.SetScore(u, "p", 0.5)
		l.SetScore(u, "q", 0.25)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	before, _ := os.Stat(path)
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Fatalf("compaction grew the log: %d -> %d", before.Size(), after.Size())
	}
	if l.Appended() != 0 {
		t.Fatalf("appended counter = %d after compaction", l.Appended())
	}
	// The log remains appendable after compaction, and everything survives
	// a reopen.
	u, err := l.AddUser("late")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SetScore(u, "r", 1); err != nil {
		t.Fatal(err)
	}
	back := reopen(t, l, path)
	defer back.Close()
	if back.Repository().NumUsers() != 21 {
		t.Fatalf("users after compaction+reopen = %d, want 21", back.Repository().NumUsers())
	}
	id, ok := back.Repository().Catalog().Lookup("r")
	if !ok {
		t.Fatal("post-compaction property lost")
	}
	if s, _ := back.Repository().Profile(20).Score(id); s != 1 {
		t.Fatalf("post-compaction score = %v", s)
	}
}

func TestOpenRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-log")
	if err := os.WriteFile(path, []byte("this is not a PLOG file at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("foreign file accepted")
	}
}

func TestAppendedCounter(t *testing.T) {
	l, _ := openTemp(t)
	defer l.Close()
	if l.Appended() != 0 {
		t.Fatal("fresh counter non-zero")
	}
	u, _ := l.AddUser("A")
	l.SetScore(u, "p", 0.5)
	if l.Appended() != 2 {
		t.Fatalf("appended = %d, want 2", l.Appended())
	}
}

// The detached append-only API stages records without touching the replayed
// repository; replay on reopen reconstructs the caller's state exactly.
func TestDetachedAppendAndReplay(t *testing.T) {
	l, path := openTemp(t)
	// The caller owns the authoritative repository.
	repo := profile.NewRepository()
	alice := repo.AddUser("Alice")
	if err := l.AppendAddUser("Alice"); err != nil {
		t.Fatal(err)
	}
	repo.MustSetScore(alice, "p", 0.7)
	if err := l.AppendSetScore(alice, "p", 0.7); err != nil {
		t.Fatal(err)
	}
	bob := repo.AddUser("Bob")
	if err := l.AppendAddUser("Bob"); err != nil {
		t.Fatal(err)
	}
	repo.MustSetScore(bob, "p", 0.2)
	if err := l.AppendSetScore(bob, "p", 0.2); err != nil {
		t.Fatal(err)
	}
	// One Sync covers the whole batch.
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// The log's replayed repository is stale by design...
	if l.Repository().NumUsers() != 0 {
		t.Fatalf("detached append mutated the replayed repository: %d users", l.Repository().NumUsers())
	}
	if l.Appended() != 4 {
		t.Fatalf("appended = %d, want 4", l.Appended())
	}
	// ...but replay reconstructs the authoritative state.
	back := reopen(t, l, path)
	defer back.Close()
	if back.Repository().NumUsers() != 2 {
		t.Fatalf("replayed %d users, want 2", back.Repository().NumUsers())
	}
	pid, _ := back.Repository().Catalog().Lookup("p")
	if s, _ := back.Repository().Profile(alice).Score(pid); s != 0.7 {
		t.Fatalf("alice's score = %v, want 0.7", s)
	}
}

func TestDetachedAppendValidation(t *testing.T) {
	l, _ := openTemp(t)
	defer l.Close()
	if err := l.AppendSetScore(0, "p", 1.5); err == nil {
		t.Fatal("out-of-range score accepted")
	}
	if err := l.AppendSetScore(-1, "p", 0.5); err == nil {
		t.Fatal("negative user accepted")
	}
	if l.Appended() != 0 {
		t.Fatalf("rejected appends counted: %d", l.Appended())
	}
}

// Compact refuses to run once detached (it would snapshot the stale replayed
// repository); CompactWith snapshots the caller's repository instead.
func TestCompactDetachedRequiresCompactWith(t *testing.T) {
	l, path := openTemp(t)
	repo := profile.NewRepository()
	u := repo.AddUser("Alice")
	if err := l.AppendAddUser("Alice"); err != nil {
		t.Fatal(err)
	}
	repo.MustSetScore(u, "p", 0.9)
	if err := l.AppendSetScore(u, "p", 0.9); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(); err == nil {
		t.Fatal("Compact succeeded on a detached log")
	}
	if err := l.CompactWith(repo); err != nil {
		t.Fatal(err)
	}
	if l.Appended() != 0 {
		t.Fatalf("appended after compaction = %d", l.Appended())
	}
	// Plain Compact works again once reattached.
	if err := l.Compact(); err != nil {
		t.Fatalf("Compact after CompactWith: %v", err)
	}
	back := reopen(t, l, path)
	defer back.Close()
	pid, _ := back.Repository().Catalog().Lookup("p")
	if s, _ := back.Repository().Profile(u).Score(pid); s != 0.9 {
		t.Fatalf("score after compaction = %v, want 0.9", s)
	}
}
