// Package explain implements the three explanation notions of Definition 5.1
// — group explanations, user explanations and subset-group explanations —
// plus the aggregate report the Podium UI renders (Figure 2): per-user top
// covered groups, the fraction of top-weight groups covered, the weight-
// ordered covered/uncovered group list, and per-property score-distribution
// comparisons between the population and the selected subset.
package explain

import (
	"fmt"
	"io"
	"slices"
	"sort"

	"podium/internal/core"
	"podium/internal/groups"
	"podium/internal/profile"
)

// Group is a group explanation ⟨label, wei(G), cov(G)⟩.
type Group struct {
	ID     groups.GroupID `json:"id"`
	Label  string         `json:"label"`
	Weight float64        `json:"weight"`
	Cov    int            `json:"cov"`
}

// User is a user explanation: the groups the user represents — the reason it
// was selected — ordered by decreasing weight, with the user's marginal
// contribution at selection time.
type User struct {
	User     profile.UserID `json:"user"`
	Name     string         `json:"name"`
	Groups   []Group        `json:"groups"`
	Marginal float64        `json:"marginal"`
}

// SubsetGroup is a subset-group explanation ⟨cov(G), |U∩G|⟩: required versus
// actual coverage of one group by the selected subset.
type SubsetGroup struct {
	Group    Group `json:"group"`
	Required int   `json:"required"`
	Actual   int   `json:"actual"`
	Covered  bool  `json:"covered"`
}

// ForGroup builds the group explanation for gid.
func ForGroup(inst *groups.Instance, gid groups.GroupID) Group {
	g := inst.Index.Group(gid)
	return Group{
		ID:     gid,
		Label:  g.Label(inst.Index.Repo().Catalog()),
		Weight: inst.Wei[gid],
		Cov:    inst.Cov[gid],
	}
}

// ForUser builds the user explanation for u; marginal may be zero when the
// selection-time contribution is unknown.
func ForUser(inst *groups.Instance, u profile.UserID, marginal float64) User {
	ue := User{
		User:     u,
		Name:     inst.Index.Repo().UserName(u),
		Marginal: marginal,
	}
	for _, gid := range inst.Index.UserGroups(u) {
		ue.Groups = append(ue.Groups, ForGroup(inst, gid))
	}
	sort.SliceStable(ue.Groups, func(i, j int) bool { return ue.Groups[i].Weight > ue.Groups[j].Weight })
	return ue
}

// ForSubset builds the subset-group explanation of how users cover gid.
func ForSubset(inst *groups.Instance, users []profile.UserID, gid groups.GroupID) SubsetGroup {
	g := inst.Index.Group(gid)
	actual := 0
	for _, u := range users {
		if g.Contains(u) {
			actual++
		}
	}
	return SubsetGroup{
		Group:    ForGroup(inst, gid),
		Required: inst.Cov[gid],
		Actual:   actual,
		Covered:  actual >= inst.Cov[gid],
	}
}

// Report aggregates the explanations for a full selection result, mirroring
// the explanation page of the prototype UI (Figure 2).
type Report struct {
	// Users explains each selected user, in selection order.
	Users []User `json:"users"`
	// Groups lists the subset-group explanation of every group, ordered by
	// decreasing weight (the UI's green/red list).
	Groups []SubsetGroup `json:"groups"`
	// TopK and TopKCovered report how many of the TopK top-weight groups
	// are covered (the "97%" headline of Figure 2).
	TopK        int `json:"top_k"`
	TopKCovered int `json:"top_k_covered"`
}

// TopKFraction returns TopKCovered/TopK, or 0 when TopK is zero.
func (r *Report) TopKFraction() float64 {
	if r.TopK == 0 {
		return 0
	}
	return float64(r.TopKCovered) / float64(r.TopK)
}

// NewReport builds the full report for a selection result. topK bounds the
// headline coverage statistic; it is clamped to the number of groups.
func NewReport(inst *groups.Instance, res *core.Result, topK int) *Report {
	rep := &Report{}
	for i, u := range res.Users {
		var marg float64
		if i < len(res.Marginals) {
			marg = res.Marginals[i]
		}
		rep.Users = append(rep.Users, ForUser(inst, u, marg))
	}
	// Sort the (small) group IDs by weight before building the explanations:
	// reordering fat SubsetGroup structs through sort's reflected swapper
	// dominated this function's profile. The stable sort keyed on weight
	// alone keeps ties in ID order, exactly as the slice-sorting version did.
	order := make([]groups.GroupID, inst.Index.NumGroups())
	for i := range order {
		order[i] = groups.GroupID(i)
	}
	slices.SortStableFunc(order, func(a, b groups.GroupID) int {
		switch {
		case inst.Wei[a] > inst.Wei[b]:
			return -1
		case inst.Wei[a] < inst.Wei[b]:
			return 1
		}
		return 0
	})
	rep.Groups = make([]SubsetGroup, 0, len(order))
	for _, gid := range order {
		rep.Groups = append(rep.Groups, ForSubset(inst, res.Users, gid))
	}
	if topK > len(rep.Groups) {
		topK = len(rep.Groups)
	}
	rep.TopK = topK
	for _, sg := range rep.Groups[:topK] {
		if sg.Covered {
			rep.TopKCovered++
		}
	}
	return rep
}

// Distribution compares the score distribution of one property between the
// population and the selected subset — the right-pane graph of Figure 2 and
// the input to the CD-sim metric. It returns, per bucket of β(p), the
// fraction of the property's population members and of the subset members
// falling in that bucket. Buckets whose group was dropped still appear with
// zero mass.
func Distribution(inst *groups.Instance, users []profile.UserID, prop profile.PropertyID) (all, subset []float64) {
	ix := inst.Index
	buckets := ix.Buckets(prop)
	all = make([]float64, len(buckets))
	subset = make([]float64, len(buckets))
	if len(buckets) == 0 {
		return all, subset
	}
	inSubset := make(map[profile.UserID]bool, len(users))
	for _, u := range users {
		inSubset[u] = true
	}
	var totalAll, totalSub float64
	for _, gid := range ix.GroupsOfProperty(prop) {
		g := ix.Group(gid)
		all[g.BucketIdx] = float64(g.Size())
		totalAll += float64(g.Size())
		for _, u := range g.Members {
			if inSubset[u] {
				subset[g.BucketIdx]++
				totalSub++
			}
		}
	}
	for i := range all {
		if totalAll > 0 {
			all[i] /= totalAll
		}
		if totalSub > 0 {
			subset[i] /= totalSub
		}
	}
	return all, subset
}

// RenderDistribution writes an ASCII bar-chart comparison of a property's
// population-versus-subset distribution — the terminal counterpart of the
// Figure 2 right-pane graph. all and subset are per-bucket fractions;
// bucketLabels names the buckets.
func RenderDistribution(w io.Writer, property string, bucketLabels []string, all, subset []float64) {
	fmt.Fprintf(w, "%s — population (▒) vs selection (█)\n", property)
	const width = 40
	for i := range all {
		label := ""
		if i < len(bucketLabels) {
			label = bucketLabels[i]
		}
		fmt.Fprintf(w, "  %-14s ▒ %-*s %5.1f%%\n", label, width, bar(all[i], width, '▒'), 100*all[i])
		var sub float64
		if i < len(subset) {
			sub = subset[i]
		}
		fmt.Fprintf(w, "  %-14s █ %-*s %5.1f%%\n", "", width, bar(sub, width, '█'), 100*sub)
	}
}

func bar(frac float64, width int, ch rune) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*float64(width) + 0.5)
	out := make([]rune, n)
	for i := range out {
		out[i] = ch
	}
	return string(out)
}

// Render writes a human-readable version of the report — the CLI
// counterpart of the UI page.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "Selected %d users; %d/%d top-weight groups covered (%.0f%%)\n",
		len(r.Users), r.TopKCovered, r.TopK, 100*r.TopKFraction())
	for _, u := range r.Users {
		fmt.Fprintf(w, "\n%s (marginal contribution %.4g)\n", u.Name, u.Marginal)
		top := u.Groups
		if len(top) > 5 {
			top = top[:5]
		}
		for _, g := range top {
			fmt.Fprintf(w, "  represents %-50s weight %.4g, cov %d\n", g.Label, g.Weight, g.Cov)
		}
		if len(u.Groups) > 5 {
			fmt.Fprintf(w, "  … and %d more groups\n", len(u.Groups)-5)
		}
	}
	fmt.Fprintf(w, "\nGroup coverage (by decreasing weight):\n")
	for _, sg := range r.Groups {
		mark := "✗"
		if sg.Covered {
			mark = "✓"
		}
		fmt.Fprintf(w, "  %s %-50s required %d, actual %d\n", mark, sg.Group.Label, sg.Required, sg.Actual)
	}
}
