package explain

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"podium/internal/bucketing"
	"podium/internal/core"
	"podium/internal/groups"
	"podium/internal/profile"
)

func paperInstance(t *testing.T) *groups.Instance {
	t.Helper()
	repo := profile.PaperExample()
	ix := groups.Build(repo, groups.Config{Method: bucketing.Fixed{Interior: []float64{0.4, 0.65}}, K: 3})
	return groups.NewInstance(ix, groups.WeightLBS, groups.CoverSingle, 2)
}

func findGroupID(t *testing.T, inst *groups.Instance, label string) groups.GroupID {
	t.Helper()
	for _, g := range inst.Index.Groups() {
		if g.Label(inst.Index.Repo().Catalog()) == label {
			return g.ID
		}
	}
	t.Fatalf("no group labeled %q", label)
	return -1
}

func TestForGroupExample52(t *testing.T) {
	// Example 5.2: ⟨"high average rating for Mexican Cuisine", 3, 1⟩.
	inst := paperInstance(t)
	gid := findGroupID(t, inst, "high scores for avgRating Mexican")
	ge := ForGroup(inst, gid)
	if ge.Weight != 3 || ge.Cov != 1 {
		t.Fatalf("explanation = %+v, want weight 3 cov 1", ge)
	}
	// ⟨"lives in Tokyo", 2, 1⟩ with the Boolean bucket label omitted.
	tge := ForGroup(inst, findGroupID(t, inst, profile.ExLivesInTokyo))
	if tge.Weight != 2 || tge.Cov != 1 {
		t.Fatalf("Tokyo explanation = %+v", tge)
	}
	if strings.Contains(tge.Label, "true") {
		t.Fatalf("Boolean label not suppressed: %q", tge.Label)
	}
}

func TestForUserAlice(t *testing.T) {
	// Example 5.2: Alice's explanation lists the groups she represents,
	// including Mexican-lovers and Tokyo.
	inst := paperInstance(t)
	ue := ForUser(inst, 0, 10)
	if ue.Name != "Alice" || ue.Marginal != 10 {
		t.Fatalf("user explanation = %+v", ue)
	}
	if len(ue.Groups) != 6 {
		t.Fatalf("Alice represents %d groups, want 6", len(ue.Groups))
	}
	// Sorted by decreasing weight: the weight-3 lovers group first.
	if ue.Groups[0].Weight != 3 {
		t.Fatalf("top group weight = %v", ue.Groups[0].Weight)
	}
	for i := 1; i < len(ue.Groups); i++ {
		if ue.Groups[i].Weight > ue.Groups[i-1].Weight {
			t.Fatal("groups not sorted by weight")
		}
	}
}

func TestForSubsetExample52(t *testing.T) {
	// Example 5.2: {Alice, Eve} vs the Mexican-lovers group is ⟨1, 2⟩ —
	// required one, both belong, coverage exceeded.
	inst := paperInstance(t)
	gid := findGroupID(t, inst, "high scores for avgRating Mexican")
	sg := ForSubset(inst, []profile.UserID{0, 4}, gid)
	if sg.Required != 1 || sg.Actual != 2 || !sg.Covered {
		t.Fatalf("subset-group = %+v, want required 1 actual 2", sg)
	}
	// A group with no selected member is uncovered.
	nyc := ForSubset(inst, []profile.UserID{0, 4}, findGroupID(t, inst, profile.ExLivesInNYC))
	if nyc.Actual != 0 || nyc.Covered {
		t.Fatalf("NYC subset-group = %+v", nyc)
	}
}

func TestNewReport(t *testing.T) {
	inst := paperInstance(t)
	res := core.Greedy(inst, 2)
	rep := NewReport(inst, res, 5)
	if len(rep.Users) != 2 {
		t.Fatalf("report users = %d", len(rep.Users))
	}
	if rep.Users[0].Name != "Alice" || rep.Users[0].Marginal != 10 {
		t.Fatalf("first user = %+v", rep.Users[0])
	}
	if len(rep.Groups) != inst.Index.NumGroups() {
		t.Fatalf("report groups = %d", len(rep.Groups))
	}
	for i := 1; i < len(rep.Groups); i++ {
		if rep.Groups[i].Group.Weight > rep.Groups[i-1].Group.Weight {
			t.Fatal("groups not in decreasing weight order")
		}
	}
	if rep.TopK != 5 {
		t.Fatalf("TopK = %d", rep.TopK)
	}
	if rep.TopKCovered < 1 || rep.TopKCovered > 5 {
		t.Fatalf("TopKCovered = %d", rep.TopKCovered)
	}
	if f := rep.TopKFraction(); f != float64(rep.TopKCovered)/5 {
		t.Fatalf("TopKFraction = %v", f)
	}
}

func TestNewReportTopKClamped(t *testing.T) {
	inst := paperInstance(t)
	res := core.Greedy(inst, 2)
	rep := NewReport(inst, res, 1000)
	if rep.TopK != inst.Index.NumGroups() {
		t.Fatalf("TopK = %d, want clamped to %d", rep.TopK, inst.Index.NumGroups())
	}
}

func TestDistribution(t *testing.T) {
	inst := paperInstance(t)
	prop, _ := inst.Index.Repo().Catalog().Lookup(profile.ExAvgMexican)
	all, subset := Distribution(inst, []profile.UserID{0, 4}, prop)
	if len(all) != 3 || len(subset) != 3 {
		t.Fatalf("distribution lengths: %d %d", len(all), len(subset))
	}
	// Population: low {Bob} 1/4, medium 0, high {A,D,E} 3/4.
	if math.Abs(all[0]-0.25) > 1e-12 || all[1] != 0 || math.Abs(all[2]-0.75) > 1e-12 {
		t.Fatalf("all = %v", all)
	}
	// Subset {Alice, Eve}: both in high.
	if subset[0] != 0 || subset[1] != 0 || subset[2] != 1 {
		t.Fatalf("subset = %v", subset)
	}
	var sumAll, sumSub float64
	for i := range all {
		sumAll += all[i]
		sumSub += subset[i]
	}
	if math.Abs(sumAll-1) > 1e-9 || math.Abs(sumSub-1) > 1e-9 {
		t.Fatalf("distributions do not normalize: %v %v", sumAll, sumSub)
	}
}

func TestDistributionEmptySubset(t *testing.T) {
	inst := paperInstance(t)
	prop, _ := inst.Index.Repo().Catalog().Lookup(profile.ExAvgMexican)
	_, subset := Distribution(inst, nil, prop)
	for _, v := range subset {
		if v != 0 {
			t.Fatalf("empty subset distribution = %v", subset)
		}
	}
}

func TestRenderDistribution(t *testing.T) {
	var buf bytes.Buffer
	RenderDistribution(&buf, "avgRating Mexican",
		[]string{"low", "medium", "high"},
		[]float64{0.25, 0, 0.75},
		[]float64{0, 0, 1})
	out := buf.String()
	for _, want := range []string{"avgRating Mexican", "low", "high", "25.0%", "100.0%", "█", "▒"} {
		if !strings.Contains(out, want) {
			t.Fatalf("distribution render missing %q:\n%s", want, out)
		}
	}
	// Out-of-range fractions are clamped, and a short subset slice is safe.
	buf.Reset()
	RenderDistribution(&buf, "p", []string{"only"}, []float64{1.5}, nil)
	if !strings.Contains(buf.String(), "150.0%") {
		// The printed percentage shows the raw value; the bar is clamped.
		t.Fatalf("unexpected render:\n%s", buf.String())
	}
}

func TestRender(t *testing.T) {
	inst := paperInstance(t)
	res := core.Greedy(inst, 2)
	rep := NewReport(inst, res, 5)
	var buf bytes.Buffer
	rep.Render(&buf)
	out := buf.String()
	for _, want := range []string{"Alice", "Eve", "top-weight groups covered", "✓"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output missing %q:\n%s", want, out)
		}
	}
}
