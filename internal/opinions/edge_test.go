package opinions

import (
	"testing"

	"podium/internal/profile"
)

// Edge cases of the procurement/evaluation API: empty user sets, users
// without reviews, out-of-range destination ids and degenerate n values must
// all degrade gracefully instead of panicking.

func TestProcureEmptyUserSet(t *testing.T) {
	s, d := fixture(t)
	if got := s.Procure(d, []profile.UserID{}); len(got) != 0 {
		t.Fatalf("empty user set procured %d reviews", len(got))
	}
	ev := Evaluate(s, nil)
	if ev.Destinations != 1 {
		t.Fatalf("destinations = %d", ev.Destinations)
	}
	if ev.TopicSentiment != 0 || ev.Usefulness != 0 || ev.RatingVar != 0 {
		t.Fatalf("empty selection produced nonzero opinion metrics: %+v", ev)
	}
}

func TestProcureUserWithZeroReviews(t *testing.T) {
	s, d := fixture(t)
	ghost := []profile.UserID{42} // never reviewed anything
	if got := s.Procure(d, ghost); len(got) != 0 {
		t.Fatalf("reviewless user procured %d reviews", len(got))
	}
	if got := s.UserDestinations(42); len(got) != 0 {
		t.Fatalf("reviewless user has destinations %v", got)
	}
	if got := Usefulness(s, d, ghost); got != 0 {
		t.Fatalf("usefulness = %v", got)
	}
	if got := RatingVariance(s, d, ghost); got != 0 {
		t.Fatalf("variance = %v", got)
	}
	if got := TopicSentimentCoverage(s, d, ghost); got != 0 {
		t.Fatalf("coverage = %v", got)
	}
	// CD-sim against an all-zero subset distribution is well-defined.
	if got := RatingDistributionSimilarity(s, d, ghost); got < 0 || got > 1 {
		t.Fatalf("similarity = %v outside [0,1]", got)
	}
}

func TestProcureUnknownDestination(t *testing.T) {
	s, _ := fixture(t)
	users := []profile.UserID{0, 1}
	for _, d := range []DestID{-1, DestID(s.NumDestinations()), 99} {
		if got := s.Procure(d, users); got != nil {
			t.Fatalf("Procure(%d) = %v, want nil", d, got)
		}
		if got := TopicSentimentCoverage(s, d, users); got != 0 {
			t.Fatalf("TopicSentimentCoverage(%d) = %v", d, got)
		}
		if got := Usefulness(s, d, users); got != 0 {
			t.Fatalf("Usefulness(%d) = %v", d, got)
		}
		if got := RatingDistributionSimilarity(s, d, users); got != 0 {
			t.Fatalf("RatingDistributionSimilarity(%d) = %v", d, got)
		}
		if got := RatingVariance(s, d, users); got != 0 {
			t.Fatalf("RatingVariance(%d) = %v", d, got)
		}
	}
}

func TestEvaluateTopDegenerateN(t *testing.T) {
	s, _ := fixture(t)
	// n exceeding the destination count evaluates everything.
	if ev := EvaluateTop(s, []profile.UserID{0}, 100); ev.Destinations != 1 {
		t.Fatalf("n=100: destinations = %d", ev.Destinations)
	}
	// n == 0 and n < 0 evaluate nothing — and must not panic.
	if ev := EvaluateTop(s, []profile.UserID{0}, 0); ev.Destinations != 0 {
		t.Fatalf("n=0: destinations = %d", ev.Destinations)
	}
	if ev := EvaluateTop(s, []profile.UserID{0}, -3); ev.Destinations != 0 {
		t.Fatalf("n=-3: destinations = %d", ev.Destinations)
	}
}

func TestEvaluateTopOnEmptyStore(t *testing.T) {
	s := NewStore(5)
	if ev := EvaluateTop(s, []profile.UserID{0}, 5); ev.Destinations != 0 {
		t.Fatalf("empty store evaluated %d destinations", ev.Destinations)
	}
}
