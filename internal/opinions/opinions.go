// Package opinions implements the opinion-procurement side of the
// evaluation (Section 8): a store of ground-truth user reviews per
// destination, a procurement simulator that "asks" a selected user subset
// for its opinions by looking up their recorded reviews, and the four
// opinion-diversity metrics of Section 8.2 — topic+sentiment coverage,
// usefulness, rating distribution similarity and rating variance.
package opinions

import (
	"fmt"
	"sort"

	"podium/internal/metrics"
	"podium/internal/profile"
	"podium/internal/stats"
)

// DestID identifies a destination (a restaurant / business under review).
type DestID int

// TopicMention is one topic touched by a review, with its sentiment.
type TopicMention struct {
	Topic    string
	Positive bool
}

// Review is one ground-truth opinion of a user about a destination.
type Review struct {
	User   profile.UserID
	Dest   DestID
	Rating int // 1..MaxRating
	Topics []TopicMention
	Useful int // usefulness votes (available in the Yelp-like dataset)
}

// Store holds the ground-truth reviews, grouped by destination, together
// with each destination's prevalent-topic vocabulary (the paper uses the
// topic lists TripAdvisor extracts per destination).
type Store struct {
	maxRating  int
	destNames  []string
	topics     [][]string
	categories []string
	reviews    [][]Review
	byUser     map[profile.UserID][]int // destination ids reviewed by user
}

// NewStore creates a store for ratings in 1..maxRating.
func NewStore(maxRating int) *Store {
	if maxRating < 1 {
		panic("opinions: maxRating must be at least 1")
	}
	return &Store{maxRating: maxRating, byUser: make(map[profile.UserID][]int)}
}

// MaxRating returns the rating scale's upper bound.
func (s *Store) MaxRating() int { return s.maxRating }

// AddDestination registers a destination with its prevalent topics.
func (s *Store) AddDestination(name string, topics []string) DestID {
	s.destNames = append(s.destNames, name)
	s.topics = append(s.topics, append([]string(nil), topics...))
	s.categories = append(s.categories, "")
	s.reviews = append(s.reviews, nil)
	return DestID(len(s.destNames) - 1)
}

// SetDestCategory records a destination's category (e.g. its cuisine). The
// hold-out evaluation protocol uses it to exclude the category's profile
// aggregates from selection.
func (s *Store) SetDestCategory(d DestID, category string) { s.categories[d] = category }

// DestCategory returns a destination's category, or "" when unset.
func (s *Store) DestCategory(d DestID) string { return s.categories[d] }

// AddReview records a ground-truth review. Ratings outside [1, MaxRating]
// and unknown destinations are rejected.
func (s *Store) AddReview(r Review) error {
	if int(r.Dest) < 0 || int(r.Dest) >= len(s.destNames) {
		return fmt.Errorf("opinions: unknown destination %d", r.Dest)
	}
	if r.Rating < 1 || r.Rating > s.maxRating {
		return fmt.Errorf("opinions: rating %d outside [1,%d]", r.Rating, s.maxRating)
	}
	s.reviews[r.Dest] = append(s.reviews[r.Dest], r)
	s.byUser[r.User] = append(s.byUser[r.User], int(r.Dest))
	return nil
}

// MustAddReview is AddReview for generator code.
func (s *Store) MustAddReview(r Review) {
	if err := s.AddReview(r); err != nil {
		panic(err)
	}
}

// NumDestinations returns the number of registered destinations.
func (s *Store) NumDestinations() int { return len(s.destNames) }

// DestName returns a destination's display name.
func (s *Store) DestName(d DestID) string { return s.destNames[d] }

// Topics returns a destination's prevalent topics. Callers must not modify
// the returned slice.
func (s *Store) Topics(d DestID) []string { return s.topics[d] }

// Reviews returns all ground-truth reviews of a destination. Callers must
// not modify the returned slice.
func (s *Store) Reviews(d DestID) []Review { return s.reviews[d] }

// NumReviews returns the total review count across destinations.
func (s *Store) NumReviews() int {
	n := 0
	for _, rs := range s.reviews {
		n += len(rs)
	}
	return n
}

// UserDestinations returns the destinations a user has reviewed, in review
// insertion order. The hold-out evaluation protocol ("select users based on
// their profiles excluding the data related to some destination", Section
// 8.2) uses it to know which users' ground truth touches a destination.
func (s *Store) UserDestinations(u profile.UserID) []DestID {
	ds := s.byUser[u]
	out := make([]DestID, len(ds))
	for i, d := range ds {
		out[i] = DestID(d)
	}
	return out
}

// validDest reports whether d names a registered destination. The metric
// functions accept arbitrary ids (evaluation code often iterates ranges
// computed elsewhere), so unknown destinations degrade to "no opinions"
// instead of panicking on a slice index.
func (s *Store) validDest(d DestID) bool {
	return int(d) >= 0 && int(d) < len(s.destNames)
}

// Procure simulates procurement: it returns the opinions the selected users
// would give about destination d — their recorded ground-truth reviews.
// Unknown destinations yield no reviews.
func (s *Store) Procure(d DestID, users []profile.UserID) []Review {
	if !s.validDest(d) {
		return nil
	}
	inSel := make(map[profile.UserID]bool, len(users))
	for _, u := range users {
		inSel[u] = true
	}
	var out []Review
	for _, r := range s.reviews[d] {
		if inSel[r.User] {
			out = append(out, r)
		}
	}
	return out
}

// TopicSentimentCoverage measures content coverage of the procured reviews:
// each prevalent topic contributes ½ for appearing in a positive mention and
// ½ for a negative one, so 100% means "every topic appears in both a
// positive and a negative review".
func TopicSentimentCoverage(s *Store, d DestID, users []profile.UserID) float64 {
	if !s.validDest(d) {
		return 0
	}
	topics := s.Topics(d)
	if len(topics) == 0 {
		return 1
	}
	pos := map[string]bool{}
	neg := map[string]bool{}
	for _, r := range s.Procure(d, users) {
		for _, tm := range r.Topics {
			if tm.Positive {
				pos[tm.Topic] = true
			} else {
				neg[tm.Topic] = true
			}
		}
	}
	var covered float64
	for _, t := range topics {
		if pos[t] {
			covered += 0.5
		}
		if neg[t] {
			covered += 0.5
		}
	}
	return covered / float64(len(topics))
}

// Usefulness sums the usefulness votes of the procured reviews — reviews a
// larger population relates to represent larger groups' opinions.
func Usefulness(s *Store, d DestID, users []profile.UserID) float64 {
	var sum float64
	for _, r := range s.Procure(d, users) {
		sum += float64(r.Useful)
	}
	return sum
}

// RatingDistributionSimilarity is CD-sim between the procured and the
// population rating distributions over the values 1..MaxRating
// (Section 8.2's per-destination instantiation of Definition 8.1).
func RatingDistributionSimilarity(s *Store, d DestID, users []profile.UserID) float64 {
	if !s.validDest(d) {
		return 0
	}
	k := s.maxRating
	all := make([]float64, k)
	sub := make([]float64, k)
	inSel := make(map[profile.UserID]bool, len(users))
	for _, u := range users {
		inSel[u] = true
	}
	var totalAll, totalSub float64
	for _, r := range s.reviews[d] {
		all[r.Rating-1]++
		totalAll++
		if inSel[r.User] {
			sub[r.Rating-1]++
			totalSub++
		}
	}
	for i := 0; i < k; i++ {
		if totalAll > 0 {
			all[i] /= totalAll
		}
		if totalSub > 0 {
			sub[i] /= totalSub
		}
	}
	return metrics.CDSim(sub, all)
}

// RatingVariance is the population variance of the procured ratings; 0 when
// fewer than two opinions were procured.
func RatingVariance(s *Store, d DestID, users []profile.UserID) float64 {
	var xs []float64
	for _, r := range s.Procure(d, users) {
		xs = append(xs, float64(r.Rating))
	}
	if len(xs) < 2 {
		return 0
	}
	return stats.Variance(xs)
}

// Evaluation aggregates the opinion metrics across destinations (each metric
// is computed per destination, then averaged — the paper's protocol).
type Evaluation struct {
	TopicSentiment float64
	Usefulness     float64
	RatingSim      float64
	RatingVar      float64
	Destinations   int
}

// Evaluate computes all opinion metrics for a selected subset, averaged over
// every destination that has at least one ground-truth review.
func Evaluate(s *Store, users []profile.UserID) Evaluation {
	return evaluate(s, users, allDestinations(s))
}

// EvaluateTop evaluates only the n most-reviewed destinations — the paper's
// protocol ("we have examined 50 destinations with an average of 90 reviews
// per destination"): opinion diversity is only meaningful where the
// population actually holds opinions. Ties break toward the lower
// destination ID.
func EvaluateTop(s *Store, users []profile.UserID, n int) Evaluation {
	ds := allDestinations(s)
	sort.SliceStable(ds, func(i, j int) bool {
		return len(s.reviews[ds[i]]) > len(s.reviews[ds[j]])
	})
	if n < 0 {
		n = 0 // a negative request evaluates nothing rather than panicking
	}
	if n < len(ds) {
		ds = ds[:n]
	}
	return evaluate(s, users, ds)
}

func allDestinations(s *Store) []DestID {
	var ds []DestID
	for d := 0; d < s.NumDestinations(); d++ {
		if len(s.reviews[d]) > 0 {
			ds = append(ds, DestID(d))
		}
	}
	return ds
}

func evaluate(s *Store, users []profile.UserID, dests []DestID) Evaluation {
	var ev Evaluation
	for _, id := range dests {
		ev.TopicSentiment += TopicSentimentCoverage(s, id, users)
		ev.Usefulness += Usefulness(s, id, users)
		ev.RatingSim += RatingDistributionSimilarity(s, id, users)
		ev.RatingVar += RatingVariance(s, id, users)
		ev.Destinations++
	}
	if ev.Destinations > 0 {
		n := float64(ev.Destinations)
		ev.TopicSentiment /= n
		ev.Usefulness /= n
		ev.RatingSim /= n
		ev.RatingVar /= n
	}
	return ev
}
