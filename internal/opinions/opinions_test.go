package opinions

import (
	"math"
	"testing"

	"podium/internal/profile"
)

// fixture: one destination "Summer Pavilion" with topics service & food and
// four reviews from users 0..3.
func fixture(t *testing.T) (*Store, DestID) {
	t.Helper()
	s := NewStore(5)
	d := s.AddDestination("Summer Pavilion", []string{"service", "food"})
	s.MustAddReview(Review{User: 0, Dest: d, Rating: 5, Useful: 3, Topics: []TopicMention{
		{Topic: "service", Positive: true}, {Topic: "food", Positive: true},
	}})
	s.MustAddReview(Review{User: 1, Dest: d, Rating: 1, Useful: 1, Topics: []TopicMention{
		{Topic: "service", Positive: false},
	}})
	s.MustAddReview(Review{User: 2, Dest: d, Rating: 3, Useful: 0, Topics: []TopicMention{
		{Topic: "food", Positive: false},
	}})
	s.MustAddReview(Review{User: 3, Dest: d, Rating: 5, Useful: 7, Topics: []TopicMention{
		{Topic: "food", Positive: true},
	}})
	return s, d
}

func TestStoreValidation(t *testing.T) {
	s := NewStore(5)
	d := s.AddDestination("x", nil)
	if err := s.AddReview(Review{User: 0, Dest: d, Rating: 0}); err == nil {
		t.Fatal("rating 0 accepted")
	}
	if err := s.AddReview(Review{User: 0, Dest: d, Rating: 6}); err == nil {
		t.Fatal("rating 6 accepted")
	}
	if err := s.AddReview(Review{User: 0, Dest: DestID(9), Rating: 3}); err == nil {
		t.Fatal("unknown destination accepted")
	}
	if err := s.AddReview(Review{User: 0, Dest: d, Rating: 3}); err != nil {
		t.Fatal(err)
	}
	if s.NumReviews() != 1 {
		t.Fatalf("NumReviews = %d", s.NumReviews())
	}
}

func TestNewStorePanicsOnBadScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("maxRating 0 did not panic")
		}
	}()
	NewStore(0)
}

func TestProcure(t *testing.T) {
	s, d := fixture(t)
	got := s.Procure(d, []profile.UserID{0, 2})
	if len(got) != 2 {
		t.Fatalf("procured %d reviews", len(got))
	}
	for _, r := range got {
		if r.User != 0 && r.User != 2 {
			t.Fatalf("procured review from unselected user %d", r.User)
		}
	}
	if got := s.Procure(d, nil); len(got) != 0 {
		t.Fatalf("empty selection procured %d reviews", len(got))
	}
}

func TestTopicSentimentCoverage(t *testing.T) {
	s, d := fixture(t)
	// User 0 alone: service+ and food+ → each topic covered on one of two
	// sentiments → 0.5.
	if got := TopicSentimentCoverage(s, d, []profile.UserID{0}); got != 0.5 {
		t.Fatalf("coverage = %v, want 0.5", got)
	}
	// Users 0,1,2: service +/-, food +/- → full coverage.
	if got := TopicSentimentCoverage(s, d, []profile.UserID{0, 1, 2}); got != 1 {
		t.Fatalf("coverage = %v, want 1", got)
	}
	// Users 1,2: service-, food- → 0.5.
	if got := TopicSentimentCoverage(s, d, []profile.UserID{1, 2}); got != 0.5 {
		t.Fatalf("coverage = %v, want 0.5", got)
	}
	if got := TopicSentimentCoverage(s, d, nil); got != 0 {
		t.Fatalf("empty coverage = %v, want 0", got)
	}
}

func TestTopicSentimentIgnoresUnknownTopics(t *testing.T) {
	s := NewStore(5)
	d := s.AddDestination("x", []string{"known"})
	s.MustAddReview(Review{User: 0, Dest: d, Rating: 3, Topics: []TopicMention{
		{Topic: "off-list", Positive: true},
	}})
	if got := TopicSentimentCoverage(s, d, []profile.UserID{0}); got != 0 {
		t.Fatalf("off-list topic counted: %v", got)
	}
}

func TestUsefulness(t *testing.T) {
	s, d := fixture(t)
	if got := Usefulness(s, d, []profile.UserID{0, 3}); got != 10 {
		t.Fatalf("usefulness = %v, want 10", got)
	}
	if got := Usefulness(s, d, nil); got != 0 {
		t.Fatalf("usefulness = %v, want 0", got)
	}
}

func TestRatingDistributionSimilarity(t *testing.T) {
	s, d := fixture(t)
	// Full population is perfectly similar to itself.
	all := []profile.UserID{0, 1, 2, 3}
	if got := RatingDistributionSimilarity(s, d, all); got != 1 {
		t.Fatalf("self-similarity = %v, want 1", got)
	}
	// Selecting only 5-star reviewers under-represents ratings 1 and 3:
	// tax = (1/5)·(1 + 1) → 0.6.
	got := RatingDistributionSimilarity(s, d, []profile.UserID{0, 3})
	if math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("similarity = %v, want 0.6", got)
	}
}

func TestRatingVariance(t *testing.T) {
	s, d := fixture(t)
	// Ratings {5,1}: mean 3, variance 4.
	if got := RatingVariance(s, d, []profile.UserID{0, 1}); got != 4 {
		t.Fatalf("variance = %v, want 4", got)
	}
	if got := RatingVariance(s, d, []profile.UserID{0}); got != 0 {
		t.Fatalf("single-review variance = %v, want 0", got)
	}
}

func TestEvaluateAveragesAcrossDestinations(t *testing.T) {
	s, d1 := fixture(t)
	d2 := s.AddDestination("Second", []string{"vibe"})
	s.MustAddReview(Review{User: 0, Dest: d2, Rating: 4, Useful: 2, Topics: []TopicMention{
		{Topic: "vibe", Positive: true},
	}})
	empty := s.AddDestination("NoReviews", []string{"t"})
	_ = empty // destinations without reviews are skipped

	ev := Evaluate(s, []profile.UserID{0, 1})
	if ev.Destinations != 2 {
		t.Fatalf("destinations = %d, want 2", ev.Destinations)
	}
	// Topic coverage: d1 with users {0,1} → service both sentiments (1.0·½+...)
	// = service + and -, food + only → (1 + 0.5)/2 = 0.75; d2 → 0.5.
	want := (0.75 + 0.5) / 2
	if math.Abs(ev.TopicSentiment-want) > 1e-12 {
		t.Fatalf("topic coverage = %v, want %v", ev.TopicSentiment, want)
	}
	// Usefulness: d1 = 4, d2 = 2 → 3.
	if ev.Usefulness != 3 {
		t.Fatalf("usefulness = %v, want 3", ev.Usefulness)
	}
	if ev.RatingSim <= 0 || ev.RatingSim > 1 {
		t.Fatalf("rating similarity = %v", ev.RatingSim)
	}
	_ = d1
}

func TestEvaluateTopRestrictsToMostReviewed(t *testing.T) {
	s := NewStore(5)
	busy := s.AddDestination("busy", []string{"t"})
	quiet := s.AddDestination("quiet", []string{"t"})
	for i := 0; i < 5; i++ {
		s.MustAddReview(Review{User: profile.UserID(i), Dest: busy, Rating: 3})
	}
	s.MustAddReview(Review{User: 0, Dest: quiet, Rating: 1})

	top1 := EvaluateTop(s, []profile.UserID{0}, 1)
	if top1.Destinations != 1 {
		t.Fatalf("destinations = %d, want 1", top1.Destinations)
	}
	// The busy destination is the one evaluated: user 0's 3-rating matches
	// one-fifth of the busy population's single bucket — rating sim is that
	// of busy, not quiet.
	busyOnly := RatingDistributionSimilarity(s, busy, []profile.UserID{0})
	if top1.RatingSim != busyOnly {
		t.Fatalf("EvaluateTop used the wrong destination: %v vs %v", top1.RatingSim, busyOnly)
	}
	all := EvaluateTop(s, []profile.UserID{0}, 10)
	if all.Destinations != 2 {
		t.Fatalf("destinations = %d, want 2 when n exceeds the store", all.Destinations)
	}
}

func TestUserDestinations(t *testing.T) {
	s, d := fixture(t)
	d2 := s.AddDestination("Second", nil)
	s.MustAddReview(Review{User: 0, Dest: d2, Rating: 4})
	got := s.UserDestinations(0)
	if len(got) != 2 || got[0] != d || got[1] != d2 {
		t.Fatalf("UserDestinations = %v", got)
	}
	if got := s.UserDestinations(99); len(got) != 0 {
		t.Fatalf("unknown user destinations = %v", got)
	}
}

func TestEvaluateEmptyStore(t *testing.T) {
	s := NewStore(5)
	ev := Evaluate(s, []profile.UserID{0})
	if ev.Destinations != 0 || ev.TopicSentiment != 0 {
		t.Fatalf("evaluation of empty store = %+v", ev)
	}
}
