package campaign

import (
	"path/filepath"
	"testing"

	"podium/internal/obs"
)

// transcriptTotals reduces a transcript to the quantities the campaign
// metrics family is supposed to count — the oracle for the live-run test.
type transcriptTotals struct {
	rounds, repairRounds         uint64
	waves, solicitations         uint64
	answered, declined, timeouts uint64
	recovered                    float64
}

func totalsOf(tr []RoundRecord) transcriptTotals {
	var tt transcriptTotals
	prev := 0.0
	for _, rr := range tr {
		tt.rounds++
		if rr.Repaired {
			tt.repairRounds++
			if d := rr.Coverage - prev; d > 0 {
				tt.recovered += d
			}
		}
		prev = rr.Coverage
		for _, w := range rr.Waves {
			tt.waves++
			tt.solicitations += uint64(len(w.Results))
			for _, res := range w.Results {
				switch res.Outcome {
				case OutcomeAnswered:
					tt.answered++
				case OutcomeDeclined:
					tt.declined++
				default:
					tt.timeouts++
				}
			}
		}
	}
	return tt
}

func assertTotals(t *testing.T, met *obs.CampaignMetrics, want transcriptTotals) {
	t.Helper()
	checks := []struct {
		name string
		got  uint64
		want uint64
	}{
		{"rounds", met.Rounds.Value(), want.rounds},
		{"repair rounds", met.RepairRounds.Value(), want.repairRounds},
		{"waves", met.Waves.Value(), want.waves},
		{"solicitations", met.Solicitations.Value(), want.solicitations},
		{"answered", met.Answered.Value(), want.answered},
		{"declined", met.Declined.Value(), want.declined},
		{"timeouts", met.Timeouts.Value(), want.timeouts},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s counter = %d, transcript says %d", c.name, c.got, c.want)
		}
	}
	// The float counter accumulates exactly the per-round deltas, which are
	// themselves exact sums of instance weights — no tolerance needed.
	if got := met.Recovered.Value(); got != want.recovered {
		t.Errorf("recovered counter = %v, transcript says %v", got, want.recovered)
	}
}

func TestCampaignMetricsMatchTranscript(t *testing.T) {
	reg := obs.NewRegistry()
	met := obs.NewCampaignMetrics(reg)

	inst := testInstance(9, 220, 10, 10)
	c := New(inst, nil, Config{
		Budget: 10, Seed: 31,
		Behavior: Behavior{NonResponse: 0.35, Decline: 0.05},
		Metrics:  met,
	})
	if err := c.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}

	want := totalsOf(c.Transcript())
	if want.repairRounds == 0 {
		t.Fatal("campaign needed no repair; the test exercises nothing")
	}
	if want.recovered == 0 {
		t.Fatal("no coverage was recovered; pick a seed where repair gains ground")
	}
	assertTotals(t, met, want)
}

func TestCampaignMetricsNotDoubleCountedOnReplay(t *testing.T) {
	// Replaying a journal must not increment anything: resume a fully
	// completed campaign from its WAL with metrics attached and demand the
	// family stays at zero. (Metrics are excluded from the journaled config,
	// so attaching them on resume is not a config mismatch.)
	cfg := Config{Budget: 8, Seed: 77, Behavior: Behavior{NonResponse: 0.35, Decline: 0.05}}
	dir := t.TempDir()
	path := filepath.Join(dir, "done.wal")
	wantTr, _, _ := runJournaled(t, cfg, path)

	reg := obs.NewRegistry()
	met := obs.NewCampaignMetrics(reg)
	cfg.Metrics = met

	inst := testInstance(5, 180, 10, cfg.Budget)
	resumed, err := NewWithWAL(inst, nil, cfg, path)
	if err != nil {
		t.Fatalf("resume with metrics: %v", err)
	}
	if err := resumed.Run(); err != nil {
		t.Fatalf("resumed Run: %v", err)
	}
	if got := len(resumed.Transcript()); got != len(wantTr) {
		t.Fatalf("resumed transcript has %d rounds, want %d", got, len(wantTr))
	}
	assertTotals(t, met, transcriptTotals{})
}

func TestCampaignMetricsCountOnlyLiveWorkAfterResume(t *testing.T) {
	// Kill a journaled campaign mid-flight, then resume it with metrics
	// attached: the counters must reflect at most the work done after the
	// resume point — never the replayed prefix on top of it.
	cfg := Config{Budget: 8, Seed: 77, Behavior: Behavior{NonResponse: 0.35, Decline: 0.05}}
	dir := t.TempDir()
	wantTr, _, _ := runJournaled(t, cfg, filepath.Join(dir, "clean.wal"))
	total := totalsOf(wantTr)

	path := filepath.Join(dir, "killed.wal")
	inst := testInstance(5, 180, 10, cfg.Budget)
	c, err := NewWithWAL(inst, nil, cfg, path)
	if err != nil {
		t.Fatalf("NewWithWAL: %v", err)
	}
	c.wal.failAfter = 3 // die early: most of the campaign runs after resume
	if err := c.Run(); err == nil {
		t.Fatal("kill hook never fired; raise failAfter past the journal length instead")
	}

	reg := obs.NewRegistry()
	met := obs.NewCampaignMetrics(reg)
	cfg.Metrics = met
	resumed, err := NewWithWAL(inst, nil, cfg, path)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	// Stats are maintained by the shared recordWave/closeRound path, so right
	// after construction they measure exactly what the replay reconstructed.
	replayed := resumed.Stats()
	if err := resumed.Run(); err != nil {
		t.Fatalf("resumed Run: %v", err)
	}

	if got, want := met.Rounds.Value(), total.rounds-uint64(replayed.Rounds); got != want {
		t.Errorf("rounds counted live = %d, want %d (%d of %d replayed)",
			got, want, replayed.Rounds, total.rounds)
	}
	if got, want := met.Waves.Value(), total.waves-uint64(replayed.Waves); got != want {
		t.Errorf("waves counted live = %d, want %d (%d of %d replayed)",
			got, want, replayed.Waves, total.waves)
	}
	if got, want := met.Solicitations.Value(), total.solicitations-uint64(replayed.Solicited); got != want {
		t.Errorf("solicitations counted live = %d, want %d (%d of %d replayed)",
			got, want, replayed.Solicited, total.solicitations)
	}
	if met.Rounds.Value() == 0 {
		t.Error("no live rounds counted after resume; the kill point left nothing to do")
	}
}
