package campaign

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"podium/internal/profile"
)

// runJournaled runs a fresh journaled campaign to completion and returns its
// transcript, final panel and WAL bytes.
func runJournaled(t *testing.T, cfg Config, path string) ([]RoundRecord, []profile.UserID, []byte) {
	t.Helper()
	inst := testInstance(5, 180, 10, cfg.Budget)
	c, err := NewWithWAL(inst, nil, cfg, path)
	if err != nil {
		t.Fatalf("NewWithWAL: %v", err)
	}
	if err := c.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading WAL: %v", err)
	}
	return c.Transcript(), c.Status().Accepted, data
}

func TestCampaignWALKillResumeBitIdentical(t *testing.T) {
	// The deterministic-simulation acceptance test: a campaign killed after
	// every possible journal record, resumed from the WAL, must reproduce
	// the uninterrupted run's transcript, final panel and journal bytes.
	cfg := Config{Budget: 8, Seed: 77, Behavior: Behavior{NonResponse: 0.35, Decline: 0.05}}
	dir := t.TempDir()

	wantTr, wantPanel, wantBytes := runJournaled(t, cfg, filepath.Join(dir, "uninterrupted.wal"))

	inst := testInstance(5, 180, 10, cfg.Budget)
	for kill := 1; ; kill++ {
		path := filepath.Join(dir, "killed.wal")
		os.Remove(path)

		c, err := NewWithWAL(inst, nil, cfg, path)
		if err != nil {
			t.Fatalf("NewWithWAL: %v", err)
		}
		c.wal.failAfter = kill
		err = c.Run()
		if err == nil {
			// The campaign finished before the hook fired: every earlier
			// kill point has been exercised.
			if kill == 1 {
				t.Fatal("kill hook never fired")
			}
			break
		}
		if !errors.Is(err, errKilled) {
			t.Fatalf("kill %d: unexpected error %v", kill, err)
		}

		resumed, err := NewWithWAL(inst, nil, cfg, path)
		if err != nil {
			t.Fatalf("kill %d: resume: %v", kill, err)
		}
		if err := resumed.Run(); err != nil {
			t.Fatalf("kill %d: resumed Run: %v", kill, err)
		}
		if got := resumed.Transcript(); !reflect.DeepEqual(got, wantTr) {
			t.Fatalf("kill %d: resumed transcript diverges", kill)
		}
		if got := resumed.Status().Accepted; !reflect.DeepEqual(got, wantPanel) {
			t.Fatalf("kill %d: resumed panel %v, want %v", kill, got, wantPanel)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("kill %d: reading WAL: %v", kill, err)
		}
		if !reflect.DeepEqual(data, wantBytes) {
			t.Fatalf("kill %d: resumed WAL bytes diverge from the uninterrupted run", kill)
		}
	}
}

func TestCampaignWALTornTailRecovery(t *testing.T) {
	cfg := Config{Budget: 8, Seed: 19, Behavior: Behavior{NonResponse: 0.3}}
	dir := t.TempDir()
	path := filepath.Join(dir, "torn.wal")
	wantTr, wantPanel, wantBytes := runJournaled(t, cfg, filepath.Join(dir, "clean.wal"))

	if _, _, data := runJournaled(t, cfg, path); len(data) < 20 {
		t.Fatalf("WAL too small to tear: %d bytes", len(data))
	}
	// Tear the file mid-record — the signature of a crash during an append.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-7); err != nil {
		t.Fatal(err)
	}

	inst := testInstance(5, 180, 10, cfg.Budget)
	resumed, err := NewWithWAL(inst, nil, cfg, path)
	if err != nil {
		t.Fatalf("resume after tear: %v", err)
	}
	if resumed.wal.Recovered == 0 {
		t.Fatal("no torn tail reported")
	}
	if err := resumed.Run(); err != nil {
		t.Fatalf("resumed Run: %v", err)
	}
	if got := resumed.Transcript(); !reflect.DeepEqual(got, wantTr) {
		t.Fatal("transcript diverges after torn-tail recovery")
	}
	if got := resumed.Status().Accepted; !reflect.DeepEqual(got, wantPanel) {
		t.Fatalf("panel diverges after torn-tail recovery: %v", got)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(data, wantBytes) {
		t.Fatal("WAL bytes diverge after torn-tail recovery")
	}
}

func TestCampaignWALCompletedIsNoop(t *testing.T) {
	cfg := Config{Budget: 6, Seed: 23}
	dir := t.TempDir()
	path := filepath.Join(dir, "done.wal")
	wantTr, wantPanel, wantBytes := runJournaled(t, cfg, path)

	inst := testInstance(5, 180, 10, cfg.Budget)
	again, err := NewWithWAL(inst, nil, cfg, path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if err := again.Run(); err != nil {
		t.Fatalf("Run on completed journal: %v", err)
	}
	st := again.Status()
	if !st.Done {
		t.Fatal("replayed campaign not done")
	}
	if !reflect.DeepEqual(st.Accepted, wantPanel) {
		t.Fatalf("replayed panel %v, want %v", st.Accepted, wantPanel)
	}
	if got := again.Transcript(); !reflect.DeepEqual(got, wantTr) {
		t.Fatal("replayed transcript diverges")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(data, wantBytes) {
		t.Fatal("reopening a completed journal modified it")
	}
}

func TestCampaignWALConfigMismatchRejected(t *testing.T) {
	cfg := Config{Budget: 6, Seed: 29}
	dir := t.TempDir()
	path := filepath.Join(dir, "cfg.wal")
	runJournaled(t, cfg, path)

	inst := testInstance(5, 180, 10, 6)
	other := cfg
	other.Seed = 30
	if _, err := NewWithWAL(inst, nil, other, path); err == nil {
		t.Fatal("resume under a different configuration was accepted")
	}
}
