package campaign

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"podium/internal/profile"
)

// The campaign WAL follows the repolog framing exactly — magic + version
// header, then checksummed records — so a killed orchestrator recovers the
// valid prefix and resumes mid-round. Unlike repolog (whose records rebuild a
// repository), these records are the campaign's round transcript itself:
// replaying them reconstructs the orchestrator state bit for bit, and the
// deterministic simulation guarantees the continuation appends the same bytes
// an uninterrupted run would have.
//
// File layout:
//
//	magic "PCMP" | format version (1 byte) | record*
//	record := kind (1 byte) | uvarint len | payload | crc32(kind‖payload)
const (
	walMagic   = "PCMP"
	walVersion = 1

	recConfig   byte = 1 // JSON of the campaign Config, for resume validation
	recRound    byte = 2 // round number + newly selected panel (pick order)
	recWave     byte = 3 // one solicitation wave's outcomes, canonical user order
	recRoundEnd byte = 4 // unresponsive users declared dead + coverage score
	recDone     byte = 5 // terminal status + final panel

	// maxWALRecordLen bounds one record; panels are at most a few thousand
	// users, so this is generous.
	maxWALRecordLen = 1 << 26
)

// Terminal status codes carried by recDone.
const (
	doneExhausted byte = 0 // candidates or rounds ran out before the budget filled
	doneConverged byte = 1 // the panel reached the budget
	doneCancelled byte = 2
)

// WAL journals one campaign. It is used only by the campaign's orchestrator
// goroutine, never concurrently.
type WAL struct {
	path string
	f    *os.File
	w    *bufio.Writer
	// Recovered reports how many trailing bytes were discarded as a torn
	// tail during Open.
	Recovered int64

	// failAfter, when positive, makes the append path fail once that many
	// further records have been written — the deterministic "kill" the
	// resume tests inject. Zero disables the hook.
	failAfter int
}

// errKilled is the injected append failure of the resume tests.
var errKilled = fmt.Errorf("campaign: wal append killed by test hook")

// walEvent is one decoded record, produced by Open's replay.
type walEvent interface{ walEvent() }

type evConfig struct{ raw []byte }
type evRound struct {
	round    int
	selected []profile.UserID
}
type evWave struct {
	round, attempt int
	backoffMs      float64
	results        []SolicitResult
}
type evRoundEnd struct {
	round    int
	dead     []profile.UserID
	coverage float64
}
type evDone struct {
	status byte
	panel  []profile.UserID
}

func (evConfig) walEvent()   {}
func (evRound) walEvent()    {}
func (evWave) walEvent()     {}
func (evRoundEnd) walEvent() {}
func (evDone) walEvent()     {}

// OpenWAL opens (or creates) the journal at path, replays every valid record
// and truncates any torn tail, returning the decoded events in order. A
// freshly created journal is fsynced along with its containing directory
// before OpenWAL returns: without the directory sync, a crash right after
// creation can lose the file itself (the directory entry is not durable),
// leaving a resume with no journal where record appends had already been
// acknowledged.
func OpenWAL(path string) (*WAL, []walEvent, error) {
	_, statErr := os.Stat(path)
	fresh := os.IsNotExist(statErr)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("campaign: %w", err)
	}
	w := &WAL{path: path, f: f}
	events, err := w.replay()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if fresh {
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("campaign: syncing new journal: %w", err)
		}
		if err := syncDir(filepath.Dir(path)); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	w.w = bufio.NewWriter(f)
	return w, events, nil
}

// syncDir fsyncs a directory so a just-created or just-renamed entry in it
// survives a crash. Platforms that cannot fsync directories return an error
// from Sync; that is tolerated (best effort, matching repolog's rename
// path), but failure to open the directory is not.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("campaign: opening dir for sync: %w", err)
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}

func (w *WAL) replay() ([]walEvent, error) {
	info, err := w.f.Stat()
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	if info.Size() == 0 {
		if _, err := w.f.WriteString(walMagic); err != nil {
			return nil, fmt.Errorf("campaign: writing header: %w", err)
		}
		if _, err := w.f.Write([]byte{walVersion}); err != nil {
			return nil, fmt.Errorf("campaign: writing header: %w", err)
		}
		return nil, nil
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	r := bufio.NewReader(w.f)
	head := make([]byte, len(walMagic)+1)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, fmt.Errorf("campaign: reading header: %w", err)
	}
	if string(head[:len(walMagic)]) != walMagic {
		return nil, fmt.Errorf("campaign: %s is not a campaign journal", w.path)
	}
	if head[len(walMagic)] != walVersion {
		return nil, fmt.Errorf("campaign: unsupported journal version %d", head[len(walMagic)])
	}
	var events []walEvent
	valid := int64(len(head))
	for {
		kind, payload, n, err := readWALRecord(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Torn tail: keep the valid prefix, drop the rest.
			w.Recovered = info.Size() - valid
			break
		}
		ev, err := decodeWALEvent(kind, payload)
		if err != nil {
			return nil, err
		}
		events = append(events, ev)
		valid += n
	}
	if w.Recovered > 0 {
		if err := w.f.Truncate(valid); err != nil {
			return nil, fmt.Errorf("campaign: truncating torn tail: %w", err)
		}
	}
	if _, err := w.f.Seek(valid, io.SeekStart); err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	return events, nil
}

func readWALRecord(r *bufio.Reader) (kind byte, payload []byte, n int64, err error) {
	kind, err = r.ReadByte()
	if err != nil {
		return 0, nil, 0, io.EOF
	}
	plen, lenBytes, err := readUvarintCounted(r)
	if err != nil {
		return 0, nil, 0, fmt.Errorf("campaign: record length: %w", err)
	}
	if plen > maxWALRecordLen {
		return 0, nil, 0, fmt.Errorf("campaign: record of %d bytes exceeds limit", plen)
	}
	payload = make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, 0, fmt.Errorf("campaign: record payload: %w", err)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return 0, nil, 0, fmt.Errorf("campaign: record checksum: %w", err)
	}
	sum := crc32.NewIEEE()
	sum.Write([]byte{kind})
	sum.Write(payload)
	if binary.LittleEndian.Uint32(crcBuf[:]) != sum.Sum32() {
		return 0, nil, 0, fmt.Errorf("campaign: checksum mismatch")
	}
	return kind, payload, int64(1) + int64(lenBytes) + int64(plen) + 4, nil
}

func readUvarintCounted(r *bufio.Reader) (uint64, int, error) {
	var v uint64
	var shift, n int
	for {
		b, err := r.ReadByte()
		if err != nil {
			return 0, n, err
		}
		n++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, n, nil
		}
		shift += 7
		if shift > 63 {
			return 0, n, fmt.Errorf("varint overflow")
		}
	}
}

func decodeWALEvent(kind byte, payload []byte) (walEvent, error) {
	p := bytes.NewReader(payload)
	switch kind {
	case recConfig:
		return evConfig{raw: payload}, nil
	case recRound:
		round, err := readUvarint(p, "round")
		if err != nil {
			return nil, err
		}
		sel, err := readUsers(p)
		if err != nil {
			return nil, err
		}
		return evRound{round: int(round), selected: sel}, nil
	case recWave:
		round, err := readUvarint(p, "round")
		if err != nil {
			return nil, err
		}
		attempt, err := readUvarint(p, "attempt")
		if err != nil {
			return nil, err
		}
		backoff, err := readFloat(p)
		if err != nil {
			return nil, err
		}
		count, err := readUvarint(p, "count")
		if err != nil {
			return nil, err
		}
		if count > maxWALRecordLen/8 {
			return nil, fmt.Errorf("campaign: wave of %d results exceeds limit", count)
		}
		results := make([]SolicitResult, 0, count)
		for i := uint64(0); i < count; i++ {
			u, err := readUvarint(p, "user")
			if err != nil {
				return nil, err
			}
			out, err := p.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("campaign: wave outcome: %w", err)
			}
			lat, err := readFloat(p)
			if err != nil {
				return nil, err
			}
			results = append(results, SolicitResult{
				User: profile.UserID(u), Outcome: Outcome(out), LatencyMs: lat,
			})
		}
		return evWave{round: int(round), attempt: int(attempt), backoffMs: backoff, results: results}, nil
	case recRoundEnd:
		round, err := readUvarint(p, "round")
		if err != nil {
			return nil, err
		}
		dead, err := readUsers(p)
		if err != nil {
			return nil, err
		}
		cov, err := readFloat(p)
		if err != nil {
			return nil, err
		}
		return evRoundEnd{round: int(round), dead: dead, coverage: cov}, nil
	case recDone:
		status, err := p.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("campaign: done status: %w", err)
		}
		panel, err := readUsers(p)
		if err != nil {
			return nil, err
		}
		return evDone{status: status, panel: panel}, nil
	}
	return nil, fmt.Errorf("campaign: unknown record kind %d", kind)
}

func readUvarint(p *bytes.Reader, what string) (uint64, error) {
	v, err := binary.ReadUvarint(p)
	if err != nil {
		return 0, fmt.Errorf("campaign: %s: %w", what, err)
	}
	return v, nil
}

func readFloat(p *bytes.Reader) (float64, error) {
	var bits [8]byte
	if _, err := io.ReadFull(p, bits[:]); err != nil {
		return 0, fmt.Errorf("campaign: float: %w", err)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(bits[:])), nil
}

func readUsers(p *bytes.Reader) ([]profile.UserID, error) {
	count, err := readUvarint(p, "user count")
	if err != nil {
		return nil, err
	}
	if count > maxWALRecordLen/2 {
		return nil, fmt.Errorf("campaign: user list of %d exceeds limit", count)
	}
	out := make([]profile.UserID, 0, count)
	for i := uint64(0); i < count; i++ {
		u, err := readUvarint(p, "user")
		if err != nil {
			return nil, err
		}
		out = append(out, profile.UserID(u))
	}
	return out, nil
}

// --- encoding ---

func putUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutUvarint(tmp[:], v)])
}

func putFloat(buf *bytes.Buffer, v float64) {
	var bits [8]byte
	binary.LittleEndian.PutUint64(bits[:], math.Float64bits(v))
	buf.Write(bits[:])
}

func putUsers(buf *bytes.Buffer, users []profile.UserID) {
	putUvarint(buf, uint64(len(users)))
	for _, u := range users {
		putUvarint(buf, uint64(u))
	}
}

// AppendConfig journals the campaign configuration (its canonical JSON).
func (w *WAL) AppendConfig(raw []byte) error { return w.append(recConfig, raw) }

// AppendRound journals a round's newly selected panel, in pick order.
func (w *WAL) AppendRound(round int, selected []profile.UserID) error {
	var buf bytes.Buffer
	putUvarint(&buf, uint64(round))
	putUsers(&buf, selected)
	return w.append(recRound, buf.Bytes())
}

// AppendWave journals one solicitation wave, results in canonical user order.
func (w *WAL) AppendWave(round, attempt int, backoffMs float64, results []SolicitResult) error {
	var buf bytes.Buffer
	putUvarint(&buf, uint64(round))
	putUvarint(&buf, uint64(attempt))
	putFloat(&buf, backoffMs)
	putUvarint(&buf, uint64(len(results)))
	for _, res := range results {
		putUvarint(&buf, uint64(res.User))
		buf.WriteByte(byte(res.Outcome))
		putFloat(&buf, res.LatencyMs)
	}
	return w.append(recWave, buf.Bytes())
}

// AppendRoundEnd journals the users declared unresponsive this round and the
// accepted panel's coverage score after the round.
func (w *WAL) AppendRoundEnd(round int, dead []profile.UserID, coverage float64) error {
	var buf bytes.Buffer
	putUvarint(&buf, uint64(round))
	putUsers(&buf, dead)
	putFloat(&buf, coverage)
	return w.append(recRoundEnd, buf.Bytes())
}

// AppendDone journals the campaign's terminal status and final panel.
func (w *WAL) AppendDone(status byte, panel []profile.UserID) error {
	var buf bytes.Buffer
	buf.WriteByte(status)
	putUsers(&buf, panel)
	return w.append(recDone, buf.Bytes())
}

// append frames, writes and syncs one record. Each record is durable before
// the orchestrator proceeds — the wave is the campaign's durability unit.
func (w *WAL) append(kind byte, payload []byte) error {
	if w.failAfter != 0 {
		w.failAfter--
		if w.failAfter == 0 {
			return errKilled
		}
	}
	if err := w.w.WriteByte(kind); err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	var tmp [binary.MaxVarintLen64]byte
	if _, err := w.w.Write(tmp[:binary.PutUvarint(tmp[:], uint64(len(payload)))]); err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	if _, err := w.w.Write(payload); err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	sum := crc32.NewIEEE()
	sum.Write([]byte{kind})
	sum.Write(payload)
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], sum.Sum32())
	if _, err := w.w.Write(crcBuf[:]); err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	return nil
}

// Close flushes and closes the journal.
func (w *WAL) Close() error {
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return fmt.Errorf("campaign: %w", err)
	}
	return w.f.Close()
}
