package campaign

import (
	"reflect"
	"strings"
	"testing"

	"podium/internal/core"
	"podium/internal/groups"
)

// TestCampaignRuleAwareRepair: a campaign configured with a non-default rule
// converges, runs every round's panel selection (initial and repair alike)
// under that rule's credit schedule, and stays deterministic for a fixed
// seed. Round 1's selection is cross-checked against GreedyRule directly.
func TestCampaignRuleAwareRepair(t *testing.T) {
	for _, name := range core.RuleNames() {
		inst := testInstance(5, 200, 10, 8)
		c := New(inst, nil, Config{Budget: 8, Seed: 17, Rule: name, Behavior: Behavior{NonResponse: 0.25}})
		if err := c.Run(); err != nil {
			t.Fatalf("rule %s: Run: %v", name, err)
		}
		st := c.Status()
		if !st.Done || !st.Converged {
			t.Fatalf("rule %s: campaign did not converge: %+v", name, st)
		}
		tr := c.Transcript()
		want, err := core.GreedyRule(inst, 8, core.MustRule(name), core.Options{})
		if err != nil {
			t.Fatalf("rule %s: GreedyRule: %v", name, err)
		}
		if !reflect.DeepEqual(tr[0].Selected, want.Users) {
			t.Fatalf("rule %s: round 1 selected %v, GreedyRule picks %v", name, tr[0].Selected, want.Users)
		}

		// Bit-identical reruns: same config, same transcript.
		c2 := New(testInstance(5, 200, 10, 8), nil, Config{Budget: 8, Seed: 17, Rule: name, Behavior: Behavior{NonResponse: 0.25}})
		if err := c2.Run(); err != nil {
			t.Fatalf("rule %s: rerun: %v", name, err)
		}
		if !reflect.DeepEqual(c2.Transcript(), tr) {
			t.Fatalf("rule %s: rerun transcript diverged", name)
		}
	}
}

// TestCampaignUnknownRule: a bad rule name surfaces as Run's error — never a
// constructor panic (servers build campaigns from client input).
func TestCampaignUnknownRule(t *testing.T) {
	inst := testInstance(5, 50, 5, 4)
	c := New(inst, nil, Config{Budget: 4, Seed: 1, Rule: "nope"})
	err := c.Run()
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("Run error = %v, want unknown-rule error", err)
	}
	if st := c.Status(); st.Err == "" {
		t.Fatal("status does not carry the rule error")
	}
}

// TestCampaignRuleEBSIncompatible: EBS weights under a weight-reading rule
// fail the first selection with a typed error instead of mis-selecting.
func TestCampaignRuleEBSIncompatible(t *testing.T) {
	base := testInstance(5, 50, 5, 4)
	inst := groups.NewInstance(base.Index, groups.WeightEBS, groups.CoverSingle, 4)
	c := New(inst, nil, Config{Budget: 4, Seed: 1, Rule: "harmonic"})
	if err := c.Run(); err == nil {
		t.Fatal("EBS + harmonic campaign ran without error")
	}
}
