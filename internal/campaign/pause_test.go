package campaign

import (
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// TestCampaignPauseResumeBitIdentical is the graceful-shutdown contract: a
// campaign paused mid-wave journals no terminal verdict, and reopening the
// WAL continues it to the exact transcript an uninterrupted run produces.
func TestCampaignPauseResumeBitIdentical(t *testing.T) {
	inst := testInstance(23, 200, 10, 10)
	cfg := Config{Budget: 10, Seed: 47, Behavior: Behavior{NonResponse: 0.35, Decline: 0.05}}

	ref := New(inst, nil, cfg)
	if err := ref.Run(); err != nil {
		t.Fatalf("Run(reference): %v", err)
	}
	refTr, refPanel := ref.Transcript(), ref.Status().Accepted

	// Journaled run, paused while a solicitation wave is in flight: the gate
	// releases a few responses, then the pause lands, then the rest flow so
	// the wave can reach its journaled boundary.
	path := filepath.Join(t.TempDir(), "pause.wal")
	d := cfg.withDefaults()
	gate := make(chan struct{})
	c1, err := NewWithWAL(inst, &gatedPopulation{inner: NewSimPopulation(d.Seed, d.Behavior), gate: gate}, cfg, path)
	if err != nil {
		t.Fatalf("NewWithWAL: %v", err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- c1.Run() }()
	for i := 0; i < 3; i++ {
		gate <- struct{}{}
	}
	c1.Pause()
	close(gate)
	if err := <-errCh; err != nil {
		t.Fatalf("Run(paused): %v", err)
	}
	st := c1.Status()
	if st.Done {
		t.Fatalf("paused campaign reports done: %+v", st)
	}
	if !st.Paused {
		t.Fatalf("paused campaign not marked paused: %+v", st)
	}
	if len(c1.Transcript()) == 0 {
		t.Fatal("pause landed before any journaled progress; gate choreography broke")
	}

	// Resume from the WAL and run to completion.
	c2, err := NewWithWAL(inst, nil, cfg, path)
	if err != nil {
		t.Fatalf("NewWithWAL(resume): %v", err)
	}
	if err := c2.Run(); err != nil {
		t.Fatalf("Run(resume): %v", err)
	}
	if !c2.Status().Done {
		t.Fatal("resumed campaign did not finish")
	}
	if !reflect.DeepEqual(c2.Transcript(), refTr) {
		t.Fatal("resumed transcript differs from uninterrupted reference")
	}
	if !reflect.DeepEqual(c2.Status().Accepted, refPanel) {
		t.Fatalf("resumed panel %v differs from reference %v", c2.Status().Accepted, refPanel)
	}
}

// TestCampaignConcurrentCancelAndPause races a user cancellation against the
// shutdown drain's pause while a wave is in flight. Whichever signal the run
// loop observes first may win — the invariants are no deadlock, a coherent
// end state (terminal-cancelled XOR resumable-paused, never both), and a
// journal that replays cleanly either way.
func TestCampaignConcurrentCancelAndPause(t *testing.T) {
	inst := testInstance(29, 150, 10, 8)
	path := filepath.Join(t.TempDir(), "race.wal")
	cfg := Config{Budget: 8, Seed: 53, TimeScale: 0.001, Behavior: Behavior{NonResponse: 0.4}}
	d := cfg.withDefaults()
	gate := make(chan struct{})
	c, err := NewWithWAL(inst, &gatedPopulation{inner: NewSimPopulation(d.Seed, d.Behavior), gate: gate}, cfg, path)
	if err != nil {
		t.Fatalf("NewWithWAL: %v", err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- c.Run() }()
	go c.Cancel()
	go c.Pause()
	close(gate)
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancel+pause deadlocked the orchestrator")
	}
	st := c.Status()
	switch {
	case st.Cancelled:
		if !st.Done || st.Paused {
			t.Fatalf("cancelled campaign in incoherent state: %+v", st)
		}
		// The cancel verdict was journaled: replay yields the same terminal
		// state and a further Run is a no-op.
		back, err := NewWithWAL(inst, nil, cfg, path)
		if err != nil {
			t.Fatalf("NewWithWAL(replay): %v", err)
		}
		if err := back.Run(); err != nil {
			t.Fatalf("Run(replayed terminal campaign): %v", err)
		}
		if bst := back.Status(); !bst.Done || !bst.Cancelled {
			t.Fatalf("replayed verdict lost: %+v", bst)
		}
	case st.Paused:
		if st.Done {
			t.Fatalf("paused campaign reports done: %+v", st)
		}
		// Pause journaled no verdict; the in-memory cancel died with the
		// orchestrator, so resume runs the campaign to a normal conclusion.
		back, err := NewWithWAL(inst, nil, cfg, path)
		if err != nil {
			t.Fatalf("NewWithWAL(resume): %v", err)
		}
		if err := back.Run(); err != nil {
			t.Fatalf("Run(resumed paused campaign): %v", err)
		}
		if bst := back.Status(); !bst.Done || bst.Cancelled {
			t.Fatalf("resumed campaign did not run to a normal verdict: %+v", bst)
		}
	default:
		t.Fatalf("neither signal landed: %+v", st)
	}
}

// TestCampaignCancelBeatsPendingPause pins the tie-break: when both signals
// are already pending at the first checkpoint, cancel wins — the user asked
// for a verdict; the drain only wanted the orchestrator gone.
func TestCampaignCancelBeatsPendingPause(t *testing.T) {
	inst := testInstance(31, 120, 10, 8)
	path := filepath.Join(t.TempDir(), "tiebreak.wal")
	cfg := Config{Budget: 8, Seed: 59, TimeScale: 0.001, Behavior: Behavior{NonResponse: 0.4}}
	c, err := NewWithWAL(inst, nil, cfg, path)
	if err != nil {
		t.Fatalf("NewWithWAL: %v", err)
	}
	c.Cancel()
	c.Pause()
	if err := c.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := c.Status()
	if !st.Done || !st.Cancelled || st.Paused {
		t.Fatalf("cancel did not win the tie-break: %+v", st)
	}
}
