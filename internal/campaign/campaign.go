// Package campaign is the opinion-procurement orchestrator: it drives a
// diverse selection (internal/core) through asynchronous multi-round
// solicitation against a population that answers late, not at all, or
// declines — the active procurement loop of the paper's Section 1/8 story
// that a passive batch lookup (opinions.Procure) cannot model.
//
// One campaign runs rounds. A round selects the users that best repair the
// panel's remaining coverage (core.GreedyComplete over the groups the
// current respondents leave uncovered, excluding users already declared
// unresponsive or declined), then solicits them through a worker pool in
// *waves*: every pending user is asked once per wave, answers slower than
// the per-solicitation timeout are retried in the next wave after capped
// exponential backoff, and users still silent after the final wave are
// declared dead. The next round tops the panel back up — coverage repair —
// and the campaign converges when the accepted panel reaches the budget, or
// gives up when candidates or rounds run out.
//
// Every round, wave and terminal verdict is journaled to a write-ahead log
// in the repolog style before the orchestrator proceeds, and the simulated
// population derives all randomness from pure (seed, user, round, attempt)
// streams, so a killed orchestrator resumed from the WAL replays into the
// exact state the crash interrupted and continues to a bit-identical
// transcript.
package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"podium/internal/core"
	"podium/internal/groups"
	"podium/internal/obs"
	"podium/internal/profile"
)

// Outcome classifies one solicitation attempt.
type Outcome uint8

const (
	// OutcomeAnswered: the user responded within the timeout.
	OutcomeAnswered Outcome = 1
	// OutcomeLate: an answer exists but took longer than the timeout — the
	// solicitation is retried next wave.
	OutcomeLate Outcome = 2
	// OutcomeSilent: no answer at all this attempt.
	OutcomeSilent Outcome = 3
	// OutcomeDeclined: explicit refusal; the user leaves the campaign.
	OutcomeDeclined Outcome = 4
)

// String renders the outcome for transcripts and API payloads.
func (o Outcome) String() string {
	switch o {
	case OutcomeAnswered:
		return "answered"
	case OutcomeLate:
		return "late"
	case OutcomeSilent:
		return "silent"
	case OutcomeDeclined:
		return "declined"
	}
	return fmt.Sprintf("outcome(%d)", uint8(o))
}

// SolicitResult is one user's outcome in one wave.
type SolicitResult struct {
	User      profile.UserID
	Outcome   Outcome
	LatencyMs float64
}

// WaveRecord is one solicitation wave of a round: every still-pending user
// asked once, results in canonical (ascending user) order.
type WaveRecord struct {
	Attempt   int
	BackoffMs float64
	Results   []SolicitResult
}

// RoundRecord is one round of the campaign transcript.
type RoundRecord struct {
	Round int
	// Selected is the round's newly selected panel in greedy pick order.
	// Rounds after the first are repairs: they top the panel back up after
	// dropouts.
	Selected []profile.UserID
	Repaired bool
	Waves    []WaveRecord
	// Dead lists the users declared unresponsive at round end.
	Dead []profile.UserID
	// Coverage is the accepted panel's weighted group coverage
	// (Instance.Score) after the round.
	Coverage float64
}

// Config parameterizes a campaign. The zero value of every field selects a
// default (see withDefaults); Seed fully determines the simulated
// population's behavior.
type Config struct {
	// Budget is the panel size the campaign tries to fill with respondents.
	Budget int `json:"budget"`
	// MaxRounds bounds select→solicit→repair cycles (default 6).
	MaxRounds int `json:"max_rounds"`
	// MaxAttempts is the solicitation attempts per user per round (default 3).
	MaxAttempts int `json:"max_attempts"`
	// TimeoutMs is the per-solicitation timeout in simulated milliseconds
	// (default 1500): slower answers count as late and are retried.
	TimeoutMs float64 `json:"timeout_ms"`
	// BackoffBaseMs/BackoffCapMs shape the capped exponential backoff before
	// retry waves: wave a waits min(base·2^(a−2), cap) (defaults 400/4000).
	BackoffBaseMs float64 `json:"backoff_base_ms"`
	BackoffCapMs  float64 `json:"backoff_cap_ms"`
	// Workers is the solicitation worker-pool size (default 8).
	Workers int `json:"workers"`
	// TimeScale converts simulated milliseconds to wall-clock sleep:
	// wall = simulated·TimeScale. 0 (the default) runs as fast as possible;
	// 1.0 is real time. It never affects outcomes, only pacing.
	TimeScale float64 `json:"time_scale"`
	// Seed drives every random stream of the simulated population.
	Seed int64 `json:"seed"`
	// Rule names the selection rule the panel rounds optimize ("" selects
	// the default coverage rule). Part of campaign identity: it is journaled,
	// and every repair round completes the accepted panel under the same
	// rule's credit schedule. omitempty keeps pre-rule WALs replayable.
	Rule string `json:"rule,omitempty"`
	// Parallelism is the selection engine's worker count (0 = sequential).
	Parallelism int `json:"parallelism"`
	// Behavior parameterizes the simulated population.
	Behavior Behavior `json:"behavior"`
	// Metrics, when non-nil, counts rounds, solicitations and repair coverage
	// (build one with obs.NewCampaignMetrics). Excluded from the journaled
	// configuration — observability wiring is not part of campaign identity,
	// and only live progress is counted: WAL replay increments nothing.
	Metrics *obs.CampaignMetrics `json:"-"`
}

func (c Config) withDefaults() Config {
	if c.Budget <= 0 {
		c.Budget = 8
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 6
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.TimeoutMs <= 0 {
		c.TimeoutMs = 1500
	}
	if c.BackoffBaseMs <= 0 {
		c.BackoffBaseMs = 400
	}
	if c.BackoffCapMs <= 0 {
		c.BackoffCapMs = 4000
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.TimeScale < 0 {
		c.TimeScale = 0
	}
	if c.Parallelism < 0 {
		c.Parallelism = 0
	}
	c.Behavior = c.Behavior.withDefaults()
	return c
}

// Status is a point-in-time snapshot of a campaign for pollers.
type Status struct {
	Budget    int
	Round     int
	Accepted  []profile.UserID
	Declined  []profile.UserID
	Dead      []profile.UserID
	Pending   []profile.UserID
	Coverage  float64
	Done      bool
	Converged bool
	Cancelled bool
	// Paused reports that Run returned at a journaled boundary without a
	// terminal verdict: reopening the WAL resumes the campaign exactly
	// where it stopped.
	Paused bool
	Err    string
}

// Stats aggregates orchestration-side measurements (wall-clock, so excluded
// from the deterministic transcript).
type Stats struct {
	Rounds           int
	Waves            int
	Solicited        int
	RepairSelections int
	SelectWallMs     float64
	RepairWallMs     float64
	RepairedUsers    int
}

// Campaign is one orchestrated procurement run. Construct with New or
// NewWithWAL, drive with Run (once), observe with Status/Transcript, stop
// with Cancel.
type Campaign struct {
	inst   *groups.Instance
	pop    Population
	cfg    Config
	wal    *WAL
	cfgRaw []byte
	// rule is cfg.Rule resolved against the core registry; ruleErr holds a
	// resolution failure (unknown name) surfaced by the first Run — New has
	// no error channel and a bad name must not panic a server.
	rule    *core.Rule
	ruleErr error

	mu sync.Mutex
	st struct {
		round     int
		accepted  []profile.UserID
		declined  []profile.UserID
		dead      []profile.UserID
		rounds    []RoundRecord
		done      bool
		converged bool
		cancelled bool
		err       error
		// open-round bookkeeping, so a WAL resume re-enters mid-round.
		open        bool
		pending     []profile.UserID
		lastAttempt int
	}
	stats Stats

	cancelCh   chan struct{}
	cancelOnce sync.Once
	pauseCh    chan struct{}
	pauseOnce  sync.Once
	doneCh     chan struct{}
}

// New builds an ephemeral (unjournaled) campaign over inst. pop may be nil,
// selecting the simulated population derived from cfg.Seed and cfg.Behavior.
func New(inst *groups.Instance, pop Population, cfg Config) *Campaign {
	cfg = cfg.withDefaults()
	if pop == nil {
		pop = NewSimPopulation(cfg.Seed, cfg.Behavior)
	}
	raw, _ := json.Marshal(cfg)
	rule, ruleErr := core.LookupRule(cfg.Rule)
	return &Campaign{
		inst: inst, pop: pop, cfg: cfg, cfgRaw: raw,
		rule: rule, ruleErr: ruleErr,
		cancelCh: make(chan struct{}), pauseCh: make(chan struct{}),
		doneCh: make(chan struct{}),
	}
}

// NewWithWAL builds a journaled campaign at path, creating the journal when
// absent and otherwise *resuming*: the valid record prefix (a torn tail from
// a crash is truncated) is replayed into orchestrator state, the recorded
// configuration is required to match cfg, and Run continues mid-round from
// the first unjournaled wave.
func NewWithWAL(inst *groups.Instance, pop Population, cfg Config, path string) (*Campaign, error) {
	c := New(inst, pop, cfg)
	w, events, err := OpenWAL(path)
	if err != nil {
		return nil, err
	}
	c.wal = w
	if len(events) == 0 {
		if err := w.AppendConfig(c.cfgRaw); err != nil {
			w.Close()
			return nil, err
		}
		return c, nil
	}
	first, ok := events[0].(evConfig)
	if !ok {
		w.Close()
		return nil, fmt.Errorf("campaign: journal %s does not start with a config record", path)
	}
	if !bytes.Equal(first.raw, c.cfgRaw) {
		w.Close()
		return nil, fmt.Errorf("campaign: journal %s was written under a different configuration", path)
	}
	if err := c.applyEvents(events[1:]); err != nil {
		w.Close()
		return nil, err
	}
	return c, nil
}

// applyEvents folds replayed journal records into orchestrator state.
func (c *Campaign) applyEvents(events []walEvent) error {
	for _, ev := range events {
		switch e := ev.(type) {
		case evRound:
			c.st.round = e.round
			c.st.rounds = append(c.st.rounds, RoundRecord{
				Round: e.round, Selected: e.selected, Repaired: e.round > 1,
			})
			c.st.open = true
			c.st.lastAttempt = 0
			c.st.pending = sortedUsers(e.selected)
		case evWave:
			if !c.st.open || len(c.st.rounds) == 0 {
				return fmt.Errorf("campaign: journal wave without an open round")
			}
			c.recordWave(WaveRecord{Attempt: e.attempt, BackoffMs: e.backoffMs, Results: e.results})
		case evRoundEnd:
			if !c.st.open || len(c.st.rounds) == 0 {
				return fmt.Errorf("campaign: journal round-end without an open round")
			}
			c.closeRound(e.dead, e.coverage)
		case evDone:
			c.st.done = true
			c.st.converged = e.status == doneConverged
			c.st.cancelled = e.status == doneCancelled
			c.st.accepted = e.panel
		default:
			return fmt.Errorf("campaign: unexpected journal event %T", ev)
		}
	}
	return nil
}

// recordWave appends a wave to the open round and routes its outcomes:
// answers join the panel, refusals leave the campaign, silent/late users
// stay pending for the next wave. Callers hold no lock during replay; the
// live path wraps it in c.mu.
func (c *Campaign) recordWave(w WaveRecord) {
	rr := &c.st.rounds[len(c.st.rounds)-1]
	rr.Waves = append(rr.Waves, w)
	c.st.lastAttempt = w.Attempt
	var still []profile.UserID
	for _, res := range w.Results {
		switch res.Outcome {
		case OutcomeAnswered:
			c.st.accepted = append(c.st.accepted, res.User)
		case OutcomeDeclined:
			c.st.declined = append(c.st.declined, res.User)
		default:
			still = append(still, res.User)
		}
	}
	c.st.pending = still
	c.stats.Waves++
	c.stats.Solicited += len(w.Results)
}

// closeRound finalizes the open round: pending users are dead, coverage is
// the accepted panel's score.
func (c *Campaign) closeRound(dead []profile.UserID, coverage float64) {
	rr := &c.st.rounds[len(c.st.rounds)-1]
	rr.Dead = dead
	rr.Coverage = coverage
	c.st.dead = append(c.st.dead, dead...)
	c.st.open = false
	c.st.pending = nil
	c.stats.Rounds++
}

// Cancel asks the orchestrator to stop; Run journals a cancelled verdict at
// the next wave boundary. Safe to call at any time, more than once.
func (c *Campaign) Cancel() { c.cancelOnce.Do(func() { close(c.cancelCh) }) }

// Pause asks the orchestrator to stop at the next journaled boundary
// *without* a terminal verdict — the graceful-shutdown counterpart of
// Cancel. Run returns with the WAL holding a clean record prefix and no done
// record, so NewWithWAL on the same path replays into exactly the
// interrupted state and continues to a bit-identical transcript. Safe to
// call at any time, more than once; Cancel wins when both are requested.
func (c *Campaign) Pause() { c.pauseOnce.Do(func() { close(c.pauseCh) }) }

func (c *Campaign) isCancelled() bool {
	select {
	case <-c.cancelCh:
		return true
	default:
		return false
	}
}

func (c *Campaign) isPaused() bool {
	select {
	case <-c.pauseCh:
		return true
	default:
		return false
	}
}

// Done is closed when Run returns.
func (c *Campaign) Done() <-chan struct{} { return c.doneCh }

// Status snapshots the campaign for pollers (server GET handlers).
func (c *Campaign) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		Budget:    c.cfg.Budget,
		Round:     c.st.round,
		Accepted:  append([]profile.UserID(nil), c.st.accepted...),
		Declined:  append([]profile.UserID(nil), c.st.declined...),
		Dead:      append([]profile.UserID(nil), c.st.dead...),
		Pending:   append([]profile.UserID(nil), c.st.pending...),
		Done:      c.st.done,
		Converged: c.st.converged,
		Cancelled: c.st.cancelled,
		Paused:    c.isPaused() && !c.st.done,
		Coverage:  c.inst.Score(c.st.accepted),
	}
	if c.st.err != nil {
		st.Err = c.st.err.Error()
	}
	return st
}

// Transcript deep-copies the round records so far. After Run returns it is
// the campaign's full deterministic transcript.
func (c *Campaign) Transcript() []RoundRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]RoundRecord, len(c.st.rounds))
	for i, rr := range c.st.rounds {
		cp := rr
		cp.Selected = append([]profile.UserID(nil), rr.Selected...)
		cp.Dead = append([]profile.UserID(nil), rr.Dead...)
		cp.Waves = make([]WaveRecord, len(rr.Waves))
		for j, w := range rr.Waves {
			wc := w
			wc.Results = append([]SolicitResult(nil), w.Results...)
			cp.Waves[j] = wc
		}
		out[i] = cp
	}
	return out
}

// Stats reports orchestration measurements accumulated so far.
func (c *Campaign) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	return s
}

// Config returns the campaign's defaulted configuration.
func (c *Campaign) Config() Config { return c.cfg }

// Run drives the campaign to a terminal verdict. It must be called exactly
// once; it blocks until the campaign converges, exhausts its rounds or
// candidates, is cancelled, or journaling fails. On a journaled campaign the
// WAL is closed before Run returns.
func (c *Campaign) Run() error {
	err := c.run()
	c.mu.Lock()
	if err != nil {
		c.st.err = err
	}
	c.mu.Unlock()
	if c.wal != nil {
		if cerr := c.wal.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	close(c.doneCh)
	return err
}

func (c *Campaign) run() error {
	if c.ruleErr != nil {
		return fmt.Errorf("campaign: %w", c.ruleErr)
	}
	c.mu.Lock()
	if c.st.done {
		c.mu.Unlock()
		return nil
	}
	round := c.st.round
	resume := c.st.open
	pending := append([]profile.UserID(nil), c.st.pending...)
	startAttempt := c.st.lastAttempt + 1
	c.mu.Unlock()

	if resume {
		if err := c.finishRound(round, pending, startAttempt); err != nil {
			return err
		}
	}
	for {
		if c.isCancelled() {
			return c.finalize(doneCancelled)
		}
		if c.isPaused() {
			// Between rounds is a journaled boundary: no open round, no
			// verdict. Resume re-enters here and selects the next round.
			return nil
		}
		c.mu.Lock()
		need := c.cfg.Budget - len(c.st.accepted)
		c.mu.Unlock()
		if need <= 0 {
			return c.finalize(doneConverged)
		}
		if round >= c.cfg.MaxRounds {
			return c.finalize(doneExhausted)
		}
		round++
		selected, err := c.selectPanel(round, need)
		if err != nil {
			return err
		}
		if len(selected) == 0 {
			return c.finalize(doneExhausted)
		}
		if c.wal != nil {
			if err := c.wal.AppendRound(round, selected); err != nil {
				return err
			}
		}
		c.mu.Lock()
		c.st.round = round
		c.st.rounds = append(c.st.rounds, RoundRecord{
			Round: round, Selected: selected, Repaired: round > 1,
		})
		c.st.open = true
		c.st.lastAttempt = 0
		c.st.pending = sortedUsers(selected)
		pending = append([]profile.UserID(nil), c.st.pending...)
		c.mu.Unlock()
		if err := c.finishRound(round, pending, 1); err != nil {
			return err
		}
	}
}

// selectPanel picks the users that best repair the accepted panel's
// remaining coverage: GreedyCompleteRule against the residual instance under
// the campaign's rule, with declined and dead users excluded from the
// candidate pool. The error is rule/instance incompatibility (EBS weights
// under a weight-reading rule) — selection itself cannot fail.
func (c *Campaign) selectPanel(round, need int) ([]profile.UserID, error) {
	c.mu.Lock()
	accepted := append([]profile.UserID(nil), c.st.accepted...)
	allowed := make([]bool, c.inst.Index.Repo().NumUsers())
	for i := range allowed {
		allowed[i] = true
	}
	for _, u := range c.st.declined {
		allowed[u] = false
	}
	for _, u := range c.st.dead {
		allowed[u] = false
	}
	c.mu.Unlock()

	start := time.Now()
	res, err := core.GreedyCompleteRule(c.inst, need, accepted, allowed, c.rule, core.Options{Parallelism: c.cfg.Parallelism})
	if err != nil {
		return nil, fmt.Errorf("campaign: round %d selection: %w", round, err)
	}
	wallMs := float64(time.Since(start)) / float64(time.Millisecond)

	c.mu.Lock()
	c.stats.SelectWallMs += wallMs
	if round > 1 {
		c.stats.RepairSelections++
		c.stats.RepairWallMs += wallMs
		c.stats.RepairedUsers += len(res.Users)
	}
	c.mu.Unlock()
	return res.Users, nil
}

// finishRound runs (or, after a resume, continues) a round's solicitation
// waves, then declares the still-silent users dead and journals the round
// end. On cancellation or pause it returns with the round left open; a
// cancel then journals the cancelled verdict, a pause journals nothing (the
// wave already durable is the resume point).
func (c *Campaign) finishRound(round int, pending []profile.UserID, startAttempt int) error {
	for a := startAttempt; a <= c.cfg.MaxAttempts && len(pending) > 0; a++ {
		if c.isCancelled() || c.isPaused() {
			return nil
		}
		backoff := 0.0
		if a > 1 {
			backoff = math.Min(c.cfg.BackoffBaseMs*math.Pow(2, float64(a-2)), c.cfg.BackoffCapMs)
			c.sleepSim(backoff)
		}
		results := c.solicitWave(round, a, pending)
		if c.wal != nil {
			if err := c.wal.AppendWave(round, a, backoff, results); err != nil {
				return err
			}
		}
		c.mu.Lock()
		c.recordWave(WaveRecord{Attempt: a, BackoffMs: backoff, Results: results})
		pending = append([]profile.UserID(nil), c.st.pending...)
		c.mu.Unlock()
		c.observeWave(results)
	}
	if c.isCancelled() || c.isPaused() {
		return nil
	}
	c.mu.Lock()
	coverage := c.inst.Score(c.st.accepted)
	// The previous round's coverage, for the repair-recovered gauge of this
	// one. Replayed rounds already closed never reach here, so metrics see
	// live progress only.
	prev := 0.0
	if n := len(c.st.rounds); n >= 2 {
		prev = c.st.rounds[n-2].Coverage
	}
	c.mu.Unlock()
	if c.wal != nil {
		if err := c.wal.AppendRoundEnd(round, pending, coverage); err != nil {
			return err
		}
	}
	c.mu.Lock()
	c.closeRound(pending, coverage)
	c.mu.Unlock()
	if met := c.cfg.Metrics; met != nil {
		met.Rounds.Inc()
		if round > 1 {
			met.RepairRounds.Inc()
			if d := coverage - prev; d > 0 {
				met.Recovered.Add(d)
			}
		}
	}
	return nil
}

// observeWave counts one live wave's outcomes (late and silent both count as
// timeouts — the user did not answer within the window).
func (c *Campaign) observeWave(results []SolicitResult) {
	met := c.cfg.Metrics
	if met == nil {
		return
	}
	met.Waves.Inc()
	met.Solicitations.Add(uint64(len(results)))
	for _, res := range results {
		switch res.Outcome {
		case OutcomeAnswered:
			met.Answered.Inc()
		case OutcomeDeclined:
			met.Declined.Inc()
		default:
			met.Timeouts.Inc()
		}
	}
}

// solicitWave asks every pending user once, through the worker pool. The
// population is a pure function of (user, round, attempt), so scheduling
// cannot affect outcomes; results are returned in canonical (ascending
// user) order because pending is kept sorted.
func (c *Campaign) solicitWave(round, attempt int, pending []profile.UserID) []SolicitResult {
	results := make([]SolicitResult, len(pending))
	workers := c.cfg.Workers
	if workers > len(pending) {
		workers = len(pending)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				u := pending[i]
				resp := c.pop.Respond(u, round, attempt)
				// The orchestrator waits at most the timeout for an answer.
				c.sleepSim(math.Min(resp.LatencyMs, c.cfg.TimeoutMs))
				results[i] = SolicitResult{
					User:      u,
					Outcome:   classify(resp, c.cfg.TimeoutMs),
					LatencyMs: resp.LatencyMs,
				}
			}
		}()
	}
	for i := range pending {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}

// classify maps a population response to a solicitation outcome under the
// orchestrator's timeout.
func classify(r Response, timeoutMs float64) Outcome {
	switch {
	case r.Declined:
		return OutcomeDeclined
	case !r.Answered:
		return OutcomeSilent
	case r.LatencyMs <= timeoutMs:
		return OutcomeAnswered
	default:
		return OutcomeLate
	}
}

// finalize journals the terminal verdict and marks the campaign done.
func (c *Campaign) finalize(status byte) error {
	c.mu.Lock()
	panel := append([]profile.UserID(nil), c.st.accepted...)
	c.mu.Unlock()
	if c.wal != nil {
		if err := c.wal.AppendDone(status, panel); err != nil {
			return err
		}
	}
	c.mu.Lock()
	c.st.done = true
	c.st.converged = status == doneConverged
	c.st.cancelled = status == doneCancelled
	c.mu.Unlock()
	return nil
}

// sleepSim converts simulated milliseconds to wall-clock sleep under
// TimeScale, returning early on cancellation. TimeScale 0 never sleeps.
func (c *Campaign) sleepSim(simMs float64) {
	if c.cfg.TimeScale <= 0 || simMs <= 0 {
		return
	}
	d := time.Duration(simMs * c.cfg.TimeScale * float64(time.Millisecond))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-c.cancelCh:
	case <-c.pauseCh:
	}
}

func sortedUsers(users []profile.UserID) []profile.UserID {
	out := append([]profile.UserID(nil), users...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
