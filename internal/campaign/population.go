package campaign

import (
	"podium/internal/profile"
	"podium/internal/stats"
)

// Response is what a solicited user does with one solicitation attempt.
type Response struct {
	// Declined is an explicit refusal: the user is reachable but opts out of
	// the whole campaign.
	Declined bool
	// Answered reports that an answer exists; LatencyMs is how long the user
	// took to produce it. An answer slower than the orchestrator's timeout is
	// a *late* answer — the solicitation is retried.
	Answered  bool
	LatencyMs float64
}

// Population produces solicitation responses. Implementations must be pure
// functions of (u, round, attempt) — the orchestrator calls Respond from
// concurrent workers and may re-ask after a crash-resume, and both rely on
// the answer being identical every time.
type Population interface {
	Respond(u profile.UserID, round, attempt int) Response
}

// Behavior parameterizes the simulated population.
type Behavior struct {
	// MeanLatencyMs is the population-mean response latency (default 800).
	MeanLatencyMs float64 `json:"mean_latency_ms"`
	// NonResponse is the population-mean probability that one attempt gets
	// no answer at all. 0 selects the default 0.2; pass a negative value to
	// disable non-response entirely.
	NonResponse float64 `json:"non_response"`
	// Decline is the probability that a user refuses the campaign outright
	// — sampled once per user, so a decliner declines every attempt
	// (default 0: nobody declines unless configured).
	Decline float64 `json:"decline"`
}

func (b Behavior) withDefaults() Behavior {
	if b.MeanLatencyMs <= 0 {
		b.MeanLatencyMs = 800
	}
	if b.NonResponse < 0 {
		b.NonResponse = 0
	}
	if b.NonResponse == 0 {
		b.NonResponse = 0.2
	}
	if b.Decline < 0 {
		b.Decline = 0
	}
	return b
}

// SimPopulation simulates users via stats RNG splitting: every user gets a
// persistent trait stream (latency scale, flakiness, whether they decline)
// and every (user, round, attempt) triple gets its own independent attempt
// stream. Because each stream's seed is a pure function of the campaign seed
// and the identifiers — stats.Derive, not a shared sequential generator —
// responses are identical regardless of worker scheduling or crash-resume.
type SimPopulation struct {
	seed int64
	b    Behavior
}

// Stream identifiers separating the trait and attempt derivation paths.
const (
	traitStream   = 1
	attemptStream = 2
)

// NewSimPopulation builds the simulated population for a campaign seed.
func NewSimPopulation(seed int64, b Behavior) *SimPopulation {
	return &SimPopulation{seed: seed, b: b.withDefaults()}
}

// Respond simulates user u's reaction to solicitation (round, attempt).
func (p *SimPopulation) Respond(u profile.UserID, round, attempt int) Response {
	// Persistent traits: who this user is, independent of when we ask.
	tr := stats.NewRand(stats.Derive(p.seed, traitStream, int64(u)))
	latScale := 0.35 + 1.3*tr.Float64()                 // per-user mean latency factor
	flaky := p.b.NonResponse * (0.4 + 1.2*tr.Float64()) // per-attempt silence probability
	if flaky > 0.95 {
		flaky = 0.95
	}
	declines := tr.Float64() < p.b.Decline

	ar := stats.NewRand(stats.Derive(p.seed, attemptStream, int64(u), int64(round), int64(attempt)))
	if declines {
		// Refusals are quick: the user answers "no" well inside the timeout.
		return Response{Declined: true, LatencyMs: 0.1 * p.b.MeanLatencyMs * ar.ExpFloat64()}
	}
	if ar.Float64() < flaky {
		return Response{} // silent: this attempt never gets an answer
	}
	return Response{
		Answered:  true,
		LatencyMs: p.b.MeanLatencyMs * latScale * ar.ExpFloat64(),
	}
}
