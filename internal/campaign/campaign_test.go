package campaign

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"podium/internal/core"
	"podium/internal/groups"
	"podium/internal/profile"
	"podium/internal/stats"
)

// testInstance builds a random repository and LBS/Single instance, the same
// construction the core property tests use.
func testInstance(seed int64, nUsers, nProps, budget int) *groups.Instance {
	rng := stats.NewRand(seed)
	repo := profile.NewRepository()
	for u := 0; u < nUsers; u++ {
		id := repo.AddUser(fmt.Sprintf("u%d", u))
		for p := 0; p < nProps; p++ {
			if rng.Float64() < 0.5 {
				repo.MustSetScore(id, fmt.Sprintf("p%d", p), math.Round(rng.Float64()*20)/20)
			}
		}
	}
	ix := groups.Build(repo, groups.Config{K: 3})
	return groups.NewInstance(ix, groups.WeightLBS, groups.CoverSingle, budget)
}

func TestCampaignConvergesAndFillsBudget(t *testing.T) {
	inst := testInstance(3, 200, 10, 10)
	c := New(inst, nil, Config{Budget: 10, Seed: 41, Behavior: Behavior{NonResponse: 0.2}})
	if err := c.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := c.Status()
	if !st.Done {
		t.Fatal("campaign not done after Run")
	}
	if !st.Converged {
		t.Fatalf("campaign did not converge: %+v", st)
	}
	if len(st.Accepted) != 10 {
		t.Fatalf("accepted %d users, want 10", len(st.Accepted))
	}
	if got, want := st.Coverage, inst.Score(st.Accepted); got != want {
		t.Fatalf("status coverage %v != Score(accepted) %v", got, want)
	}
	tr := c.Transcript()
	if len(tr) == 0 {
		t.Fatal("empty transcript")
	}
	if tr[0].Repaired {
		t.Fatal("first round marked as repair")
	}
	for _, rr := range tr[1:] {
		if !rr.Repaired {
			t.Fatalf("round %d not marked as repair", rr.Round)
		}
	}
}

func TestCampaignTranscriptDeterministic(t *testing.T) {
	inst := testInstance(5, 180, 10, 8)
	cfg := Config{Budget: 8, Seed: 99, Behavior: Behavior{NonResponse: 0.35, Decline: 0.05}}
	runOnce := func(workers int) ([]RoundRecord, []profile.UserID) {
		c := New(inst, nil, Config{
			Budget: cfg.Budget, Seed: cfg.Seed, Behavior: cfg.Behavior, Workers: workers,
		})
		if err := c.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return c.Transcript(), c.Status().Accepted
	}
	tr1, panel1 := runOnce(1)
	tr2, panel2 := runOnce(13) // scheduling must not leak into the transcript
	if !reflect.DeepEqual(tr1, tr2) {
		t.Fatal("transcripts differ across worker counts")
	}
	if !reflect.DeepEqual(panel1, panel2) {
		t.Fatalf("final panels differ: %v vs %v", panel1, panel2)
	}
}

func TestCampaignBackoffCappedExponential(t *testing.T) {
	inst := testInstance(7, 150, 10, 8)
	c := New(inst, nil, Config{
		Budget: 8, Seed: 3, MaxAttempts: 5,
		BackoffBaseMs: 100, BackoffCapMs: 300,
		Behavior: Behavior{NonResponse: 0.6},
	})
	if err := c.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []float64{0, 100, 200, 300, 300} // min(100·2^(a−2), 300)
	for _, rr := range c.Transcript() {
		for i, w := range rr.Waves {
			if w.Attempt != i+1 {
				t.Fatalf("round %d wave %d has attempt %d", rr.Round, i, w.Attempt)
			}
			if got := w.BackoffMs; got != want[i] {
				t.Fatalf("round %d attempt %d backoff %v, want %v", rr.Round, w.Attempt, got, want[i])
			}
			for j := 1; j < len(w.Results); j++ {
				if w.Results[j-1].User >= w.Results[j].User {
					t.Fatalf("wave results not in canonical user order: %v", w.Results)
				}
			}
		}
	}
}

func TestCampaignRepairRecoversCoverage(t *testing.T) {
	// The acceptance criterion: at a 30% non-response rate, the repaired
	// panel's weighted group coverage is at least the no-repair panel's and
	// within 5% of a fresh selection over live users only.
	inst := testInstance(11, 250, 12, 10)
	behavior := Behavior{NonResponse: 0.3, Decline: 0.05}

	repaired := New(inst, nil, Config{Budget: 10, Seed: 7, Behavior: behavior})
	if err := repaired.Run(); err != nil {
		t.Fatalf("Run(repaired): %v", err)
	}
	noRepair := New(inst, nil, Config{Budget: 10, Seed: 7, MaxRounds: 1, Behavior: behavior})
	if err := noRepair.Run(); err != nil {
		t.Fatalf("Run(no-repair): %v", err)
	}

	covRepaired := inst.Score(repaired.Status().Accepted)
	covNoRepair := inst.Score(noRepair.Status().Accepted)
	if covRepaired < covNoRepair {
		t.Fatalf("repair lost coverage: %v < %v", covRepaired, covNoRepair)
	}

	// Fresh selection over live users only: everyone except the users the
	// campaign observed to be dead or declining.
	st := repaired.Status()
	live := make([]bool, inst.Index.Repo().NumUsers())
	for i := range live {
		live[i] = true
	}
	for _, u := range st.Dead {
		live[u] = false
	}
	for _, u := range st.Declined {
		live[u] = false
	}
	fresh := core.GreedyRestricted(inst, 10, live)
	covFresh := inst.Score(fresh.Users)
	if covRepaired < 0.95*covFresh {
		t.Fatalf("repaired coverage %v is more than 5%% below fresh-selection coverage %v", covRepaired, covFresh)
	}

	// The repair rounds must have actually replaced dropouts.
	if stats := repaired.Stats(); stats.RepairSelections == 0 || stats.RepairedUsers == 0 {
		t.Fatalf("campaign never repaired: %+v", stats)
	}
}

func TestCampaignExhaustsWhenPopulationTooDead(t *testing.T) {
	inst := testInstance(13, 40, 8, 30)
	c := New(inst, nil, Config{
		Budget: 30, Seed: 5, MaxRounds: 2,
		Behavior: Behavior{NonResponse: 2.0, Decline: 0.5}, // flakiness clamps at 0.95
	})
	if err := c.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := c.Status()
	if !st.Done || st.Converged {
		t.Fatalf("campaign should exhaust, got %+v", st)
	}
	if len(st.Accepted) >= 30 {
		t.Fatalf("implausibly full panel: %d", len(st.Accepted))
	}
}

// gatedPopulation blocks every response until the gate closes, so tests can
// guarantee a cancellation lands while a wave is in flight.
type gatedPopulation struct {
	inner Population
	gate  chan struct{}
}

func (g *gatedPopulation) Respond(u profile.UserID, round, attempt int) Response {
	<-g.gate
	return g.inner.Respond(u, round, attempt)
}

func TestCampaignCancelMidWave(t *testing.T) {
	inst := testInstance(17, 120, 10, 8)
	cfg := Config{Budget: 8, Seed: 21}.withDefaults()
	gate := make(chan struct{})
	pop := &gatedPopulation{inner: NewSimPopulation(cfg.Seed, cfg.Behavior), gate: gate}
	c := New(inst, pop, cfg)
	errCh := make(chan error, 1)
	go func() { errCh <- c.Run() }()
	c.Cancel()
	close(gate)
	if err := <-errCh; err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := c.Status()
	if !st.Done || !st.Cancelled {
		t.Fatalf("expected cancelled campaign, got %+v", st)
	}
}

func TestCampaignStatusWhileRunning(t *testing.T) {
	// Pollers read Status concurrently with the orchestrator; exercised
	// under -race by the check gate.
	inst := testInstance(19, 160, 10, 8)
	c := New(inst, nil, Config{Budget: 8, Seed: 31, Behavior: Behavior{NonResponse: 0.4}})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-c.Done():
				return
			default:
				_ = c.Status()
				_ = c.Transcript()
				_ = c.Stats()
			}
		}
	}()
	if err := c.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	<-done
	if !c.Status().Done {
		t.Fatal("not done")
	}
}
