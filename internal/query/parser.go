package query

import (
	"fmt"
	"strconv"
	"strings"

	"podium/internal/groups"
)

// Query is a parsed selection query, not yet bound to a repository.
type Query struct {
	// Budget is the number of users to select (SELECT <n> USERS).
	Budget int
	// Weights/Coverage override the engine defaults when the corresponding
	// Set flag is true.
	Weights     groups.WeightScheme
	WeightsSet  bool
	Coverage    groups.CoverageScheme
	CoverageSet bool
	// Buckets requests a bucket count for grouping; 0 means "whatever the
	// engine was built with".
	Buckets int
	// Where holds the hard membership constraints.
	Where []Condition
	// Diversify lists properties whose groups get priority coverage.
	Diversify []string
	// Ignore lists properties excluded from coverage altogether.
	Ignore []string
}

// Condition is one WHERE constraint on a property.
type Condition struct {
	// Label is the property name (a quoted string in the query).
	Label string
	// Negated flips the condition: NOT HAS, or NOT IN.
	Negated bool
	// BucketName restricts to one named bucket (IN <name>); empty means the
	// HAS form — any bucket of the property.
	BucketName string
}

func (c Condition) String() string {
	switch {
	case c.BucketName == "" && !c.Negated:
		return fmt.Sprintf("HAS %q", c.Label)
	case c.BucketName == "":
		return fmt.Sprintf("NOT HAS %q", c.Label)
	case c.Negated:
		return fmt.Sprintf("%q NOT IN %s", c.Label, c.BucketName)
	}
	return fmt.Sprintf("%q IN %s", c.Label, c.BucketName)
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expectWord(words ...string) (string, error) {
	t := p.next()
	if t.kind == tokWord {
		for _, w := range words {
			if t.text == w {
				return w, nil
			}
		}
	}
	return "", fmt.Errorf("query: expected %v, got %s at offset %d", words, t, t.pos)
}

func (p *parser) expectString() (string, error) {
	t := p.next()
	if t.kind != tokString {
		return "", fmt.Errorf("query: expected a quoted property name, got %s at offset %d", t, t.pos)
	}
	return t.text, nil
}

func (p *parser) expectNumber() (int, error) {
	t := p.next()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("query: expected a number, got %s at offset %d", t, t.pos)
	}
	n, err := strconv.Atoi(t.text)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("query: bad number %q at offset %d", t.text, t.pos)
	}
	return n, nil
}

// Parse parses a query string.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q := &Query{}

	if _, err := p.expectWord("SELECT"); err != nil {
		return nil, err
	}
	if q.Budget, err = p.expectNumber(); err != nil {
		return nil, err
	}
	if q.Budget == 0 {
		return nil, fmt.Errorf("query: budget must be positive")
	}
	if _, err := p.expectWord("USERS", "USER"); err != nil {
		return nil, err
	}

	for p.peek().kind != tokEOF {
		t := p.next()
		if t.kind != tokWord {
			return nil, fmt.Errorf("query: expected a clause keyword, got %s at offset %d", t, t.pos)
		}
		switch t.text {
		case "WEIGHTS":
			if q.WeightsSet {
				return nil, fmt.Errorf("query: duplicate WEIGHTS clause at offset %d", t.pos)
			}
			w, err := p.expectWord("IDEN", "LBS", "EBS")
			if err != nil {
				return nil, err
			}
			q.WeightsSet = true
			switch w {
			case "IDEN":
				q.Weights = groups.WeightIden
			case "LBS":
				q.Weights = groups.WeightLBS
			case "EBS":
				q.Weights = groups.WeightEBS
			}
		case "COVERAGE":
			if q.CoverageSet {
				return nil, fmt.Errorf("query: duplicate COVERAGE clause at offset %d", t.pos)
			}
			c, err := p.expectWord("SINGLE", "PROP")
			if err != nil {
				return nil, err
			}
			q.CoverageSet = true
			if c == "SINGLE" {
				q.Coverage = groups.CoverSingle
			} else {
				q.Coverage = groups.CoverProp
			}
		case "BUCKETS":
			if q.Buckets != 0 {
				return nil, fmt.Errorf("query: duplicate BUCKETS clause at offset %d", t.pos)
			}
			n, err := p.expectNumber()
			if err != nil {
				return nil, err
			}
			if n < 1 {
				return nil, fmt.Errorf("query: BUCKETS must be at least 1")
			}
			q.Buckets = n
		case "WHERE":
			if len(q.Where) > 0 {
				return nil, fmt.Errorf("query: duplicate WHERE clause at offset %d", t.pos)
			}
			for {
				cond, err := p.parseCondition()
				if err != nil {
					return nil, err
				}
				q.Where = append(q.Where, cond)
				if p.peek().kind == tokWord && p.peek().text == "AND" {
					p.next()
					continue
				}
				break
			}
		case "DIVERSIFY":
			if _, err := p.expectWord("BY"); err != nil {
				return nil, err
			}
			labels, err := p.parseLabelList()
			if err != nil {
				return nil, err
			}
			q.Diversify = append(q.Diversify, labels...)
		case "IGNORE":
			labels, err := p.parseLabelList()
			if err != nil {
				return nil, err
			}
			q.Ignore = append(q.Ignore, labels...)
		default:
			return nil, fmt.Errorf("query: unknown clause %q at offset %d", t.text, t.pos)
		}
	}
	return q, nil
}

func (p *parser) parseCondition() (Condition, error) {
	t := p.peek()
	switch {
	case t.kind == tokWord && t.text == "NOT":
		p.next()
		if _, err := p.expectWord("HAS"); err != nil {
			return Condition{}, err
		}
		label, err := p.expectString()
		if err != nil {
			return Condition{}, err
		}
		return Condition{Label: label, Negated: true}, nil
	case t.kind == tokWord && t.text == "HAS":
		p.next()
		label, err := p.expectString()
		if err != nil {
			return Condition{}, err
		}
		return Condition{Label: label}, nil
	case t.kind == tokString:
		label := p.next().text
		negated := false
		if p.peek().kind == tokWord && p.peek().text == "NOT" {
			p.next()
			negated = true
		}
		if _, err := p.expectWord("IN"); err != nil {
			return Condition{}, err
		}
		bt := p.next()
		if bt.kind != tokWord && bt.kind != tokString {
			return Condition{}, fmt.Errorf("query: expected a bucket name, got %s at offset %d", bt, bt.pos)
		}
		// Bucket names are matched case-insensitively; normalize here so
		// the word form (uppercased by the lexer) and the quoted form agree.
		return Condition{Label: label, Negated: negated, BucketName: strings.ToLower(bt.text)}, nil
	}
	return Condition{}, fmt.Errorf("query: expected a condition, got %s at offset %d", t, t.pos)
}

func (p *parser) parseLabelList() ([]string, error) {
	var labels []string
	for {
		label, err := p.expectString()
		if err != nil {
			return nil, err
		}
		labels = append(labels, label)
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		return labels, nil
	}
}
