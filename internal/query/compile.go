package query

import (
	"fmt"
	"strings"

	"podium/internal/bucketing"
	"podium/internal/core"
	"podium/internal/groups"
)

// Compile resolves the query's property names and bucket names against a
// built group index, producing the customization feedback (Definition 6.1)
// that realizes the query's WHERE / DIVERSIFY BY / IGNORE semantics:
//
//   - HAS "p"            → all groups of p join 𝒢₊ (the per-property
//     disjunction of Definition 6.3 makes this "has any score for p")
//   - "p" IN high        → only p's high bucket joins 𝒢₊
//   - NOT HAS "p"        → all groups of p join 𝒢₋
//   - "p" NOT IN low     → p's low bucket joins 𝒢₋
//   - DIVERSIFY BY "p"   → p's groups join 𝒢_d (priority coverage)
//   - IGNORE "p"         → p's groups leave 𝒢_d? (no coverage reward)
//
// Unknown properties and bucket names are errors — a typo must not silently
// weaken a constraint.
func (q *Query) Compile(ix *groups.Index) (core.Feedback, error) {
	var fb core.Feedback
	for _, cond := range q.Where {
		gids, err := resolveCondition(ix, cond)
		if err != nil {
			return fb, err
		}
		if cond.Negated {
			fb.MustNot = append(fb.MustNot, gids...)
		} else {
			fb.MustHave = append(fb.MustHave, gids...)
		}
	}
	prioritized := map[groups.GroupID]bool{}
	for _, label := range q.Diversify {
		gids, err := groupsOf(ix, label)
		if err != nil {
			return fb, err
		}
		for _, id := range gids {
			if !prioritized[id] {
				prioritized[id] = true
				fb.Priority = append(fb.Priority, id)
			}
		}
	}
	if len(q.Ignore) > 0 {
		ignored := map[groups.GroupID]bool{}
		for _, label := range q.Ignore {
			gids, err := groupsOf(ix, label)
			if err != nil {
				return fb, err
			}
			for _, id := range gids {
				ignored[id] = true
			}
		}
		fb.StandardExplicit = true
		for i := 0; i < ix.NumGroups(); i++ {
			id := groups.GroupID(i)
			if !ignored[id] && !prioritized[id] {
				fb.Standard = append(fb.Standard, id)
			}
		}
	}
	return fb, nil
}

func groupsOf(ix *groups.Index, label string) ([]groups.GroupID, error) {
	pid, ok := ix.Repo().Catalog().Lookup(label)
	if !ok {
		return nil, fmt.Errorf("query: unknown property %q", label)
	}
	gids := ix.GroupsOfProperty(pid)
	if len(gids) == 0 {
		return nil, fmt.Errorf("query: property %q has no groups", label)
	}
	return gids, nil
}

func resolveCondition(ix *groups.Index, cond Condition) ([]groups.GroupID, error) {
	gids, err := groupsOf(ix, cond.Label)
	if err != nil {
		return nil, err
	}
	if cond.BucketName == "" {
		return gids, nil
	}
	want := strings.ToLower(cond.BucketName)
	for _, gid := range gids {
		g := ix.Group(gid)
		name := strings.ToLower(bucketing.Label(g.Bucket, g.BucketIdx, g.NumBuckets))
		if name == want {
			return []groups.GroupID{gid}, nil
		}
	}
	var available []string
	for _, gid := range gids {
		g := ix.Group(gid)
		available = append(available, bucketing.Label(g.Bucket, g.BucketIdx, g.NumBuckets))
	}
	return nil, fmt.Errorf("query: property %q has no bucket named %q (available: %s)",
		cond.Label, cond.BucketName, strings.Join(available, ", "))
}

// Validate performs the static checks that do not need an index: it reports
// conflicting conditions such as requiring and forbidding the same bucket.
func (q *Query) Validate() error {
	type key struct {
		label, bucket string
	}
	seen := map[key]bool{} // true = positive
	for _, c := range q.Where {
		k := key{c.Label, strings.ToLower(c.BucketName)}
		if prev, ok := seen[k]; ok && prev != !c.Negated {
			return fmt.Errorf("query: contradictory conditions on %s", c)
		}
		seen[k] = !c.Negated
	}
	return nil
}
