package query

import (
	"strings"
	"testing"

	"podium/internal/bucketing"
	"podium/internal/core"
	"podium/internal/groups"
	"podium/internal/profile"
)

func paperIndex(t *testing.T) *groups.Index {
	t.Helper()
	repo := profile.PaperExample()
	return groups.Build(repo, groups.Config{Method: bucketing.Fixed{Interior: []float64{0.4, 0.65}}, K: 3})
}

func TestParseMinimal(t *testing.T) {
	q, err := Parse(`SELECT 8 USERS`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Budget != 8 || q.WeightsSet || q.CoverageSet || q.Buckets != 0 {
		t.Fatalf("query = %+v", q)
	}
}

func TestParseFull(t *testing.T) {
	src := `select 5 users weights ebs coverage prop buckets 4
		where has "avgRating Mexican" and "livesIn Tokyo" not in true
		diversify by "livesIn Tokyo", "livesIn Paris"
		ignore "noise prop"`
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if q.Budget != 5 {
		t.Fatalf("budget = %d", q.Budget)
	}
	if !q.WeightsSet || q.Weights != groups.WeightEBS {
		t.Fatalf("weights = %+v", q)
	}
	if !q.CoverageSet || q.Coverage != groups.CoverProp {
		t.Fatalf("coverage = %+v", q)
	}
	if q.Buckets != 4 {
		t.Fatalf("buckets = %d", q.Buckets)
	}
	if len(q.Where) != 2 {
		t.Fatalf("where = %+v", q.Where)
	}
	if q.Where[0].Label != "avgRating Mexican" || q.Where[0].Negated || q.Where[0].BucketName != "" {
		t.Fatalf("where[0] = %+v", q.Where[0])
	}
	if q.Where[1].Label != "livesIn Tokyo" || !q.Where[1].Negated || q.Where[1].BucketName != "true" {
		t.Fatalf("where[1] = %+v", q.Where[1])
	}
	if len(q.Diversify) != 2 || q.Diversify[1] != "livesIn Paris" {
		t.Fatalf("diversify = %v", q.Diversify)
	}
	if len(q.Ignore) != 1 || q.Ignore[0] != "noise prop" {
		t.Fatalf("ignore = %v", q.Ignore)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":               ``,
		"no budget":           `SELECT USERS`,
		"zero budget":         `SELECT 0 USERS`,
		"unterminated string": `SELECT 3 USERS WHERE HAS "oops`,
		"unknown clause":      `SELECT 3 USERS FROBNICATE`,
		"bad weights":         `SELECT 3 USERS WEIGHTS HEAVY`,
		"bad coverage":        `SELECT 3 USERS COVERAGE TWICE`,
		"dup weights":         `SELECT 3 USERS WEIGHTS LBS WEIGHTS IDEN`,
		"dup where":           `SELECT 3 USERS WHERE HAS "a" WHERE HAS "b"`,
		"cond missing label":  `SELECT 3 USERS WHERE HAS`,
		"in without bucket":   `SELECT 3 USERS WHERE "p" IN`,
		"stray characters":    `SELECT 3 USERS; DROP TABLE`,
		"buckets zero":        `SELECT 3 USERS BUCKETS 0`,
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: parsed without error: %q", name, src)
		}
	}
}

func TestParseCaseInsensitiveKeywordsCaseSensitiveLabels(t *testing.T) {
	q, err := Parse(`sElEcT 2 uSeRs WhErE hAs "MiXeD Case Prop"`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Where[0].Label != "MiXeD Case Prop" {
		t.Fatalf("label case mangled: %q", q.Where[0].Label)
	}
}

func TestCompileExample62(t *testing.T) {
	// The running example's customization (Example 6.2) as a query.
	ix := paperIndex(t)
	q, err := Parse(`SELECT 2 USERS
		WHERE HAS "avgRating Mexican"
		DIVERSIFY BY "livesIn Tokyo", "livesIn NYC", "livesIn Bali", "livesIn Paris"`)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := q.Compile(ix)
	if err != nil {
		t.Fatal(err)
	}
	if len(fb.MustHave) != 2 { // low and high buckets of avgRating Mexican
		t.Fatalf("MustHave = %v", fb.MustHave)
	}
	if len(fb.Priority) != 4 {
		t.Fatalf("Priority = %v", fb.Priority)
	}
	inst := groups.NewInstance(ix, groups.WeightLBS, groups.CoverSingle, q.Budget)
	res, err := core.GreedyCustom(inst, fb, q.Budget)
	if err != nil {
		t.Fatal(err)
	}
	// Example 6.4's outcome: {Alice, Eve}, Carol filtered out.
	if len(res.Users) != 2 || res.Users[0] != 0 || res.Users[1] != 4 {
		t.Fatalf("selected %v, want [0 4]", res.Users)
	}
}

func TestCompileBucketCondition(t *testing.T) {
	ix := paperIndex(t)
	q, err := Parse(`SELECT 1 USERS WHERE "avgRating Mexican" IN high`)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := q.Compile(ix)
	if err != nil {
		t.Fatal(err)
	}
	if len(fb.MustHave) != 1 {
		t.Fatalf("MustHave = %v", fb.MustHave)
	}
	g := ix.Group(fb.MustHave[0])
	if !g.Bucket.Contains(0.9) {
		t.Fatalf("resolved bucket %v is not the high bucket", g.Bucket)
	}
}

func TestCompileBooleanBucket(t *testing.T) {
	ix := paperIndex(t)
	q, err := Parse(`SELECT 1 USERS WHERE "livesIn Tokyo" NOT IN true`)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := q.Compile(ix)
	if err != nil {
		t.Fatal(err)
	}
	if len(fb.MustNot) != 1 {
		t.Fatalf("MustNot = %v", fb.MustNot)
	}
	allowed := core.RefineUsers(ix, fb)
	if allowed[0] || allowed[3] { // Alice and David live in Tokyo
		t.Fatalf("Tokyo residents not excluded: %v", allowed)
	}
}

func TestCompileIgnore(t *testing.T) {
	ix := paperIndex(t)
	q, err := Parse(`SELECT 2 USERS IGNORE "avgRating CheapEats"`)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := q.Compile(ix)
	if err != nil {
		t.Fatal(err)
	}
	if !fb.StandardExplicit {
		t.Fatal("IGNORE did not switch to explicit standard set")
	}
	cheap, _ := ix.Repo().Catalog().Lookup(profile.ExAvgCheapEats)
	ignored := map[groups.GroupID]bool{}
	for _, gid := range ix.GroupsOfProperty(cheap) {
		ignored[gid] = true
	}
	for _, gid := range fb.Standard {
		if ignored[gid] {
			t.Fatalf("ignored group %d still in standard set", gid)
		}
	}
	if len(fb.Standard) != ix.NumGroups()-len(ignored) {
		t.Fatalf("standard set size %d", len(fb.Standard))
	}
}

func TestCompileUnknownNamesFail(t *testing.T) {
	ix := paperIndex(t)
	for _, src := range []string{
		`SELECT 2 USERS WHERE HAS "no such prop"`,
		`SELECT 2 USERS WHERE "avgRating Mexican" IN nonexistent-bucket`,
		`SELECT 2 USERS DIVERSIFY BY "no such prop"`,
		`SELECT 2 USERS IGNORE "no such prop"`,
	} {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := q.Compile(ix); err == nil {
			t.Errorf("compile %q succeeded, want error", src)
		}
	}
}

func TestCompileBucketErrorListsAvailable(t *testing.T) {
	ix := paperIndex(t)
	q, _ := Parse(`SELECT 2 USERS WHERE "avgRating Mexican" IN bogus`)
	_, err := q.Compile(ix)
	if err == nil || !strings.Contains(err.Error(), "available") {
		t.Fatalf("error %v should list available buckets", err)
	}
}

func TestValidateContradiction(t *testing.T) {
	q, err := Parse(`SELECT 2 USERS WHERE "p" IN high AND "p" NOT IN high`)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(); err == nil {
		t.Fatal("contradiction not detected")
	}
	ok, err := Parse(`SELECT 2 USERS WHERE "p" IN high AND "p" NOT IN low`)
	if err != nil {
		t.Fatal(err)
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("false positive: %v", err)
	}
}

func TestConditionString(t *testing.T) {
	cases := []struct {
		c    Condition
		want string
	}{
		{Condition{Label: "p"}, `HAS "p"`},
		{Condition{Label: "p", Negated: true}, `NOT HAS "p"`},
		{Condition{Label: "p", BucketName: "high"}, `"p" IN high`},
		{Condition{Label: "p", Negated: true, BucketName: "low"}, `"p" NOT IN low`},
	}
	for _, c := range cases {
		if got := c.c.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}
