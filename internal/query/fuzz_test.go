package query

import "testing"

// FuzzParse drives the query parser with arbitrary input: it must never
// panic, and anything it accepts must have a positive budget and re-validate.
func FuzzParse(f *testing.F) {
	f.Add(`SELECT 8 USERS`)
	f.Add(`SELECT 5 USERS WEIGHTS EBS COVERAGE PROP BUCKETS 4`)
	f.Add(`SELECT 2 USERS WHERE HAS "p" AND "q" NOT IN low DIVERSIFY BY "a", "b" IGNORE "c"`)
	f.Add(`select 1 user where "x" in "custom bucket"`)
	f.Add(`SELECT 999999999999999999999 USERS`)
	f.Add("SELECT 1 USERS WHERE \"unterminated")
	f.Add(`,,,"`)

	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		if q.Budget <= 0 {
			t.Fatalf("accepted non-positive budget %d", q.Budget)
		}
		// Validate must not panic on any parsed query.
		_ = q.Validate()
	})
}
