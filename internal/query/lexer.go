// Package query implements a small declarative language for diverse user
// selection, in the spirit of the declarative crowd-selection line of work
// the paper builds on (its profile model "follows [10]", Amsterdamer et al.,
// "Declarative user selection with soft constraints"). A query bundles the
// selection budget, the weight/coverage schemes, hard membership constraints
// (𝒢₊/𝒢₋) and diversification priorities into one string:
//
//	SELECT 8 USERS
//	WEIGHTS LBS COVERAGE SINGLE
//	WHERE HAS "avgRating Mexican" AND "livesIn Tokyo" NOT IN true
//	DIVERSIFY BY "livesIn Tokyo", "livesIn Paris"
//	IGNORE "internal score"
//
// Parse produces a Query; Compile resolves it against a group index into the
// core.Feedback the selection engine consumes.
package query

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokWord
	tokString
	tokNumber
	tokComma
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of query"
	case tokString:
		return fmt.Sprintf("%q", t.text)
	case tokComma:
		return "','"
	}
	return t.text
}

// lex splits the source into tokens. Words are case-normalized to upper;
// quoted strings keep their case (they name properties).
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '"':
			end := i + 1
			for end < len(src) && src[end] != '"' {
				end++
			}
			if end == len(src) {
				return nil, fmt.Errorf("query: unterminated string at offset %d", i)
			}
			toks = append(toks, token{tokString, src[i+1 : end], i})
			i = end + 1
		case c >= '0' && c <= '9':
			end := i
			for end < len(src) && src[end] >= '0' && src[end] <= '9' {
				end++
			}
			toks = append(toks, token{tokNumber, src[i:end], i})
			i = end
		case isWordRune(rune(c)):
			end := i
			for end < len(src) && isWordRune(rune(src[end])) {
				end++
			}
			toks = append(toks, token{tokWord, strings.ToUpper(src[i:end]), i})
			i = end
		default:
			return nil, fmt.Errorf("query: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}

func isWordRune(r rune) bool {
	return unicode.IsLetter(r) || r == '_' || r == '-'
}
