// Package viz renders experiment tables as standalone SVG charts — the
// grouped-bar form of the paper's Figure 3 and the line form of its
// scalability figures (5 and 6) — using nothing but the standard library.
// cmd/podium-bench writes these next to its text tables so a reproduction
// run produces figures, not just rows.
package viz

import (
	"fmt"
	"io"
	"strings"

	"podium/internal/experiments"
)

// Palette for series fills; cycled when a table has more rows.
var palette = []string{
	"#4e79a7", "#f28e2b", "#59a14f", "#e15759",
	"#76b7b2", "#edc948", "#b07aa1", "#9c755f",
}

const (
	chartWidth   = 920
	chartHeight  = 420
	marginLeft   = 60
	marginRight  = 180 // legend gutter
	marginTop    = 50
	marginBottom = 70
)

// GroupedBars renders the table as a grouped bar chart: one cluster per
// metric column, one bar per row (algorithm) within each cluster — the shape
// of the paper's Figure 3 panels. Values are drawn as given; pass a
// Normalized table for the paper's presentation.
func GroupedBars(w io.Writer, t *experiments.Table) error {
	if len(t.Rows) == 0 || len(t.Metrics) == 0 {
		return fmt.Errorf("viz: empty table %q", t.Title)
	}
	maxV := 0.0
	for _, r := range t.Rows {
		for _, m := range t.Metrics {
			if v := r.Get(m); v > maxV {
				maxV = v
			}
		}
	}
	if maxV == 0 {
		maxV = 1
	}

	var b strings.Builder
	openSVG(&b, t.Title)
	plotW := float64(chartWidth - marginLeft - marginRight)
	plotH := float64(chartHeight - marginTop - marginBottom)

	// Y axis with four gridlines.
	for i := 0; i <= 4; i++ {
		frac := float64(i) / 4
		y := float64(marginTop) + plotH*(1-frac)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginLeft, y, chartWidth-marginRight, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="11" text-anchor="end" fill="#666">%.2f</text>`+"\n",
			marginLeft-6, y+4, maxV*frac)
	}

	clusterW := plotW / float64(len(t.Metrics))
	barW := clusterW * 0.8 / float64(len(t.Rows))
	for mi, m := range t.Metrics {
		x0 := float64(marginLeft) + clusterW*float64(mi) + clusterW*0.1
		for ri, r := range t.Rows {
			v := r.Get(m)
			h := plotH * v / maxV
			x := x0 + barW*float64(ri)
			y := float64(marginTop) + plotH - h
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>%s — %s: %.4g</title></rect>`+"\n",
				x, y, barW*0.92, h, palette[ri%len(palette)], esc(r.Name), esc(m), v)
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="11" text-anchor="middle" fill="#333">%s</text>`+"\n",
			x0+clusterW*0.4, chartHeight-marginBottom+18, esc(shorten(m, 22)))
	}
	legend(&b, rowNames(t))
	closeSVG(&b)
	_, err := io.WriteString(w, b.String())
	return err
}

// Lines renders the table as a line chart: the x axis is the row sequence
// (sweep points), one line per metric column — the shape of the paper's
// Figures 5 and 6.
func Lines(w io.Writer, t *experiments.Table) error {
	if len(t.Rows) < 2 || len(t.Metrics) == 0 {
		return fmt.Errorf("viz: line chart needs at least two rows in %q", t.Title)
	}
	maxV := 0.0
	for _, r := range t.Rows {
		for _, m := range t.Metrics {
			if v := r.Get(m); v > maxV {
				maxV = v
			}
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	var b strings.Builder
	openSVG(&b, t.Title)
	plotW := float64(chartWidth - marginLeft - marginRight)
	plotH := float64(chartHeight - marginTop - marginBottom)
	for i := 0; i <= 4; i++ {
		frac := float64(i) / 4
		y := float64(marginTop) + plotH*(1-frac)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginLeft, y, chartWidth-marginRight, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="11" text-anchor="end" fill="#666">%.3g</text>`+"\n",
			marginLeft-6, y+4, maxV*frac)
	}
	step := plotW / float64(len(t.Rows)-1)
	for mi, m := range t.Metrics {
		var pts []string
		for ri, r := range t.Rows {
			x := float64(marginLeft) + step*float64(ri)
			y := float64(marginTop) + plotH*(1-r.Get(m)/maxV)
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", x, y))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.Join(pts, " "), palette[mi%len(palette)])
		for ri, r := range t.Rows {
			x := float64(marginLeft) + step*float64(ri)
			y := float64(marginTop) + plotH*(1-r.Get(m)/maxV)
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"><title>%s — %s: %.4g</title></circle>`+"\n",
				x, y, palette[mi%len(palette)], esc(r.Name), esc(m), r.Get(m))
		}
	}
	for ri, r := range t.Rows {
		x := float64(marginLeft) + step*float64(ri)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="11" text-anchor="middle" fill="#333">%s</text>`+"\n",
			x, chartHeight-marginBottom+18, esc(shorten(r.Name, 14)))
	}
	legend(&b, t.Metrics)
	closeSVG(&b)
	_, err := io.WriteString(w, b.String())
	return err
}

func openSVG(b *strings.Builder, title string) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		chartWidth, chartHeight, chartWidth, chartHeight)
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="white"/>`+"\n", chartWidth, chartHeight)
	fmt.Fprintf(b, `<text x="%d" y="24" font-size="15" font-weight="bold" fill="#222">%s</text>`+"\n",
		marginLeft, esc(title))
}

func legend(b *strings.Builder, names []string) {
	x := chartWidth - marginRight + 16
	for i, name := range names {
		y := marginTop + 18*i
		fmt.Fprintf(b, `<rect x="%d" y="%d" width="12" height="12" fill="%s"/>`+"\n",
			x, y, palette[i%len(palette)])
		fmt.Fprintf(b, `<text x="%d" y="%d" font-size="12" fill="#333">%s</text>`+"\n",
			x+18, y+10, esc(shorten(name, 20)))
	}
}

func closeSVG(b *strings.Builder) { b.WriteString("</svg>\n") }

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func shorten(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func rowNames(t *experiments.Table) []string {
	names := make([]string, len(t.Rows))
	for i, r := range t.Rows {
		names[i] = r.Name
	}
	return names
}
