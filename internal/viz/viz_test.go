package viz

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"

	"podium/internal/experiments"
)

func sampleTable() *experiments.Table {
	return &experiments.Table{
		Title:   "Intrinsic diversity — test",
		Metrics: []string{"Total Score", "Top-200 Coverage"},
		Rows: []experiments.Row{
			{Name: "Podium", Values: map[string]float64{"Total Score": 1.0, "Top-200 Coverage": 1.0}},
			{Name: "Random", Values: map[string]float64{"Total Score": 0.85, "Top-200 Coverage": 0.9}},
			{Name: "Clustering", Values: map[string]float64{"Total Score": 0.78, "Top-200 Coverage": 0.83}},
		},
	}
}

func TestGroupedBarsWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := GroupedBars(&buf, sampleTable()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Well-formed XML.
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML: %v", err)
		}
	}
	// One bar per (row, metric) pair.
	if got := strings.Count(out, "<rect"); got < 6 {
		t.Fatalf("rect count = %d, want >= 6 bars", got)
	}
	for _, want := range []string{"Podium", "Random", "Clustering", "Total Score"} {
		if !strings.Contains(out, want) {
			t.Fatalf("svg missing %q", want)
		}
	}
}

func TestGroupedBarsEmptyTable(t *testing.T) {
	if err := GroupedBars(&bytes.Buffer{}, &experiments.Table{Title: "empty"}); err == nil {
		t.Fatal("empty table accepted")
	}
}

func TestGroupedBarsAllZeroValues(t *testing.T) {
	tab := &experiments.Table{
		Title:   "zeros",
		Metrics: []string{"m"},
		Rows:    []experiments.Row{{Name: "a", Values: map[string]float64{"m": 0}}},
	}
	var buf bytes.Buffer
	if err := GroupedBars(&buf, tab); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Fatal("NaN leaked into SVG")
	}
}

func TestLinesWellFormed(t *testing.T) {
	tab := &experiments.Table{
		Title:   "Scalability — test",
		Metrics: []string{"Podium", "Clustering"},
		Rows: []experiments.Row{
			{Name: "|U|=250", Values: map[string]float64{"Podium": 0.001, "Clustering": 0.01}},
			{Name: "|U|=500", Values: map[string]float64{"Podium": 0.002, "Clustering": 0.03}},
			{Name: "|U|=1000", Values: map[string]float64{"Podium": 0.004, "Clustering": 0.07}},
		},
	}
	var buf bytes.Buffer
	if err := Lines(&buf, tab); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Fatalf("polyline count = %d, want 2", got)
	}
	if got := strings.Count(out, "<circle"); got != 6 {
		t.Fatalf("circle count = %d, want 6", got)
	}
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML: %v", err)
		}
	}
}

func TestLinesNeedsTwoRows(t *testing.T) {
	tab := &experiments.Table{
		Title:   "one point",
		Metrics: []string{"m"},
		Rows:    []experiments.Row{{Name: "a", Values: map[string]float64{"m": 1}}},
	}
	if err := Lines(&bytes.Buffer{}, tab); err == nil {
		t.Fatal("single-row line chart accepted")
	}
}

func TestEscaping(t *testing.T) {
	tab := &experiments.Table{
		Title:   `quotes " & <tags>`,
		Metrics: []string{"a<b"},
		Rows: []experiments.Row{
			{Name: "x&y", Values: map[string]float64{"a<b": 1}},
			{Name: "z", Values: map[string]float64{"a<b": 0.5}},
		},
	}
	var buf bytes.Buffer
	if err := GroupedBars(&buf, tab); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "a<b") || strings.Contains(out, "x&y") {
		t.Fatal("unescaped content in SVG")
	}
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML after escaping: %v", err)
		}
	}
}

// End-to-end: a real experiment table renders.
func TestRendersRealTable(t *testing.T) {
	tab := experiments.RunApproxRatio(experiments.ApproxConfig{Users: 15, Budget: 3, Seed: 1, Repetitions: 2})
	var buf bytes.Buffer
	if err := GroupedBars(&buf, tab); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty output")
	}
}
