package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeFloatCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}

	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}

	var f FloatCounter
	f.Add(1.5)
	f.Add(0.25)
	f.Add(-10) // monotone: negative deltas ignored
	if got := f.Value(); got != 1.75 {
		t.Fatalf("float counter = %v, want 1.75", got)
	}
}

func TestNilMetricsAreNoOps(t *testing.T) {
	var (
		c *Counter
		g *Gauge
		f *FloatCounter
		h *Histogram
		s *Span
	)
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	f.Add(1)
	h.Observe(1)
	s.End()
	s.AttachChild("x", time.Second)
	if s.StartChild("y") != nil {
		t.Fatal("nil span StartChild should return nil")
	}
	if s.JSON() != nil {
		t.Fatal("nil span JSON should return nil")
	}
	if c.Value() != 0 || g.Value() != 0 || f.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics should read as zero")
	}

	var r *Registry
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil ||
		r.FloatCounter("x", "") != nil || r.Histogram("x", "", nil) != nil {
		t.Fatal("nil registry should hand out nil metrics")
	}
	if err := r.WriteText(&strings.Builder{}); err != nil {
		t.Fatalf("nil registry WriteText: %v", err)
	}
	if NewServerMetrics(nil) != nil || NewCoreMetrics(nil) != nil ||
		NewCampaignMetrics(nil) != nil || NewClientMetrics(nil) != nil {
		t.Fatal("families built on a nil registry should be nil")
	}
	NewCoreMetrics(nil).ObserveStage("init", time.Millisecond)
	NewServerMetrics(nil).RouteRequests("r", "GET", 200).Inc()
	NewServerMetrics(nil).RouteLatency("r").Observe(0.1)
}

func TestHistogramBucketsAndConsistency(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	want := 0.05 + 0.1 + 0.5 + 5 + 50
	if h.Sum() != want {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
	// Bucket assignment: bounds are inclusive upper bounds.
	got := []uint64{h.counts[0].Load(), h.counts[1].Load(), h.counts[2].Load(), h.counts[3].Load()}
	for i, w := range []uint64{2, 1, 1, 1} {
		if got[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, got[i], w, got)
		}
	}
}

func TestRegistrySameInstanceAndExposition(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("podium_test_total", "help text", L("route", "status"))
	b := r.Counter("podium_test_total", "help text", L("route", "status"))
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	a.Add(3)
	r.Counter("podium_test_total", "help text", L("route", "groups")).Inc()
	r.Gauge("podium_test_epoch", "current epoch").Set(42)
	r.FloatCounter("podium_test_recovered", "points").Add(0.5)
	h := r.Histogram("podium_test_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE podium_test_total counter",
		`podium_test_total{route="groups"} 1`,
		`podium_test_total{route="status"} 3`,
		"# TYPE podium_test_epoch gauge",
		"podium_test_epoch 42",
		"podium_test_recovered 0.5",
		"# TYPE podium_test_seconds histogram",
		`podium_test_seconds_bucket{le="0.1"} 1`,
		`podium_test_seconds_bucket{le="1"} 2`,
		`podium_test_seconds_bucket{le="+Inf"} 3`,
		"podium_test_seconds_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
	// Deterministic: a second render must be byte-identical.
	var sb2 strings.Builder
	if err := r.WriteText(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != text {
		t.Fatal("exposition is not deterministic across renders")
	}
	// Children sorted: groups before status.
	if strings.Index(text, `route="groups"`) > strings.Index(text, `route="status"`) {
		t.Fatal("children not sorted by label signature")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("podium_esc_total", "", L("path", `a"b\c`+"\n")).Inc()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `path="a\"b\\c\n"`) {
		t.Fatalf("label not escaped: %s", sb.String())
	}
}

func TestSpanTree(t *testing.T) {
	root := StartSpan("select")
	child := root.StartChild("greedy")
	child.AttachChild("init", 2*time.Millisecond)
	child.AttachChild("argmax", 3*time.Millisecond)
	child.End()
	j := root.JSON()
	if j == nil || j.Name != "select" || len(j.Children) != 1 {
		t.Fatalf("unexpected root: %+v", j)
	}
	g := j.Children[0]
	if g.Name != "greedy" || len(g.Children) != 2 || g.Ms <= 0 {
		t.Fatalf("unexpected child: %+v", g)
	}
	if g.Children[0].Ms != 2 || g.Children[1].Ms != 3 {
		t.Fatalf("attached durations wrong: %+v", g.Children)
	}
}

// TestRegistryRace is the -race gate for the registry: concurrent
// registration, updates and scrapes on overlapping names. The assertions are
// secondary; the point is that the race detector stays quiet.
func TestRegistryRace(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const iters = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			routes := []string{"status", "groups", "select"}
			for i := 0; i < iters; i++ {
				route := routes[(g+i)%len(routes)]
				r.Counter("podium_race_total", "", L("route", route)).Inc()
				r.Gauge("podium_race_depth", "").Set(int64(i))
				r.Histogram("podium_race_seconds", "", []float64{0.001, 0.01, 0.1}).
					Observe(float64(i%100) / 1000)
				r.FloatCounter("podium_race_recovered", "").Add(0.001)
				if i%50 == 0 {
					var sb strings.Builder
					if err := r.WriteText(&sb); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	var total uint64
	for _, route := range []string{"status", "groups", "select"} {
		total += r.Counter("podium_race_total", "", L("route", route)).Value()
	}
	if total != goroutines*iters {
		t.Fatalf("lost counter increments: %d, want %d", total, goroutines*iters)
	}
	if got := r.Histogram("podium_race_seconds", "", nil).Count(); got != goroutines*iters {
		t.Fatalf("lost observations: %d, want %d", got, goroutines*iters)
	}
}

func TestHistogramConcurrentExpositionConsistent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("podium_cons_seconds", "", []float64{0.5})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				h.Observe(0.25)
				h.Observe(0.75)
			}
		}
	}()
	for i := 0; i < 100; i++ {
		var sb strings.Builder
		if err := r.WriteText(&sb); err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
		var inf, count string
		for _, ln := range lines {
			if strings.HasPrefix(ln, `podium_cons_seconds_bucket{le="+Inf"} `) {
				inf = strings.TrimPrefix(ln, `podium_cons_seconds_bucket{le="+Inf"} `)
			}
			if strings.HasPrefix(ln, "podium_cons_seconds_count ") {
				count = strings.TrimPrefix(ln, "podium_cons_seconds_count ")
			}
		}
		if inf == "" || count == "" || inf != count {
			t.Fatalf("scrape %d inconsistent: +Inf bucket %q vs count %q", i, inf, count)
		}
	}
	close(stop)
	wg.Wait()
}

// itoa's fast path was written for status codes; shard indexes start at 0
// and must not render as the empty label value.
func TestItoaSmallValues(t *testing.T) {
	for n, want := range map[int]string{0: "0", -3: "0", 1: "1", 16: "16", 200: "200", 1234: "1234"} {
		if got := itoa(n); got != want {
			t.Errorf("itoa(%d) = %q, want %q", n, got, want)
		}
	}
}
