package obs

// Per-layer metric families. The constructors live here — rather than in the
// layers they instrument — for two reasons: metric names stay in one place
// (one file to audit for naming drift), and the server can pre-register
// every family on one registry even where imports point the other way
// (client imports server, so server cannot reach into client for its
// metrics; instead both share the obs definitions).
//
// All families are nil-safe end to end: NewXxxMetrics(nil) returns nil, and
// every method on a nil family or nil metric is a no-op.

import "time"

// DefStageBuckets are bounds for engine-stage timings, in seconds. Stages
// run from microseconds (tiny instances) to tens of milliseconds.
var DefStageBuckets = []float64{
	0.000001, 0.0000025, 0.000005, 0.00001, 0.000025, 0.00005,
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
}

// DefBatchBuckets are bounds for apply-loop batch sizes (a size histogram,
// not a latency one).
var DefBatchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// ServerMetrics instruments the HTTP serving layer.
type ServerMetrics struct {
	reg *Registry

	// Per-route request/latency children are created by the route table;
	// these handles cover the single-valued families.
	Epoch      *Gauge     // podium_snapshot_epoch
	QueueDepth *Gauge     // podium_apply_queue_depth
	BatchSize  *Histogram // podium_apply_batch_size
	Shed       *Counter   // podium_http_requests_shed_total
	RepoBytes  *Gauge     // podium_repository_approx_bytes
}

// NewServerMetrics registers the server families on reg.
func NewServerMetrics(reg *Registry) *ServerMetrics {
	if reg == nil {
		return nil
	}
	return &ServerMetrics{
		reg: reg,
		Epoch: reg.Gauge("podium_snapshot_epoch",
			"Epoch of the currently published snapshot."),
		QueueDepth: reg.Gauge("podium_apply_queue_depth",
			"Mutations waiting in the single-writer apply queue."),
		BatchSize: reg.Histogram("podium_apply_batch_size",
			"Mutations applied per snapshot rebuild batch.", DefBatchBuckets),
		Shed: reg.Counter("podium_http_requests_shed_total",
			"Requests rejected with 429 by admission control."),
		RepoBytes: reg.Gauge("podium_repository_approx_bytes",
			"Estimated resident bytes of the published repository's profile data."),
	}
}

// LoadDuration returns the startup load-timing gauge for a source format
// ("image", "binary", "json", "log", "synth"). A gauge rather than a
// histogram: the value is set once per process start, and the format label
// makes a restart that silently fell back from the v2 image to a slower
// decode path visible on the dashboard.
func (m *ServerMetrics) LoadDuration(format string) *Gauge {
	if m == nil {
		return nil
	}
	return m.reg.Gauge("podium_repository_load_nanoseconds",
		"Wall time to load the repository at startup, by source format.",
		L("format", format))
}

// RouteRequests returns the request counter child for (route, method, code).
// Registration locks; callers on hot paths should cache the result.
func (m *ServerMetrics) RouteRequests(route, method string, code int) *Counter {
	if m == nil {
		return nil
	}
	return m.reg.Counter("podium_http_requests_total",
		"HTTP requests by route, method and status code.",
		L("route", route), L("method", method), L("code", itoa(code)))
}

// RouteLatency returns the latency histogram child for a route.
func (m *ServerMetrics) RouteLatency(route string) *Histogram {
	if m == nil {
		return nil
	}
	return m.reg.Histogram("podium_http_request_duration_seconds",
		"HTTP request latency by route.", DefLatencyBuckets, L("route", route))
}

// SelectCacheMetrics instruments the watermark-keyed select cache and the
// delta-repaired selector state behind it. Request-outcome counters are
// labeled by selection rule (see Requests); the remaining families are
// cache-global.
type SelectCacheMetrics struct {
	reg *Registry
	// Sync outcomes on cache misses: the selector state was delta-repaired or
	// fully recomputed.
	Repaired      *Counter // podium_select_syncs_total{mode="repaired"}
	Recomputed    *Counter // {mode="recomputed"}
	RepairedUsers *Counter // podium_select_repaired_rows_total
	// LRU evictions by what was evicted: a pre-marshaled response entry or a
	// delta-repaired selector state.
	EntryEvictions *Counter // podium_select_cache_evictions{kind="entry"}
	StateEvictions *Counter // {kind="state"}
	Entries        *Gauge   // podium_select_cache_entries
	Watermark      *Gauge   // podium_select_cache_watermark
}

// Requests returns the request counter child for (result, rule):
// podium_select_cache_requests_total{result="hit"|"miss"|"bypass",rule=...}.
// Registration locks; the select cache caches the children per rule.
func (m *SelectCacheMetrics) Requests(result, rule string) *Counter {
	if m == nil {
		return nil
	}
	return m.reg.Counter("podium_select_cache_requests_total",
		"Select requests by cache outcome and selection rule.",
		L("result", result), L("rule", rule))
}

// NewSelectCacheMetrics registers the select-cache families on reg.
func NewSelectCacheMetrics(reg *Registry) *SelectCacheMetrics {
	if reg == nil {
		return nil
	}
	mode := func(m string) *Counter {
		return reg.Counter("podium_select_syncs_total",
			"Selector-state synchronizations on cache misses, by mode.", L("mode", m))
	}
	return &SelectCacheMetrics{
		reg:        reg,
		Repaired:   mode("repaired"),
		Recomputed: mode("recomputed"),
		RepairedUsers: reg.Counter("podium_select_repaired_rows_total",
			"Base-marginal rows re-summed by delta repair."),
		EntryEvictions: reg.Counter("podium_select_cache_evictions",
			"Select-cache LRU evictions, by kind.", L("kind", "entry")),
		StateEvictions: reg.Counter("podium_select_cache_evictions",
			"Select-cache LRU evictions, by kind.", L("kind", "state")),
		Entries: reg.Gauge("podium_select_cache_entries",
			"Cached select responses currently held."),
		Watermark: reg.Gauge("podium_select_cache_watermark",
			"Sequence number of the last selection-relevant mutation batch."),
	}
}

// ShardMetrics instruments the distributed coordinator: fan-out RPCs to
// shard servers, merged selections and their degraded subset, the live-shard
// gauge the health endpoint keeps current, and the replica layer — failovers,
// hedged requests, health-probe latency and per-replica up/down state.
type ShardMetrics struct {
	reg *Registry

	Selects    *Counter   // podium_shard_selects_total{outcome="ok"}
	Degraded   *Counter   // {outcome="degraded"} — ≥1 shard missing from the merge
	Fanouts    *Counter   // podium_shard_requests_total{outcome="ok"} per-shard RPCs
	FanoutErrs *Counter   // {outcome="error"}
	Latency    *Histogram // podium_shard_fanout_seconds — slowest shard per fan-out
	Shards     *Gauge     // podium_shard_count — configured shard servers
	Live       *Gauge     // podium_shard_live — shards answering the last fan-out
	Replicas   *Gauge     // podium_shard_replica_count — configured replicas, all shards
	Failovers  *Counter   // podium_shard_failovers_total — routed calls that moved to a sibling after an error
	HedgesWon  *Counter   // podium_shard_hedges_total{outcome="won"} — hedge answered first
	HedgesLost *Counter   // {outcome="lost"} — primary answered first, hedge cancelled
	Stale      *Counter   // podium_shard_stale_replicas_total — replicas deprioritized for a lagging epoch
	ProbeLat   *Histogram // podium_shard_probe_seconds — active health-probe round trips
}

// NewShardMetrics registers the coordinator families on reg.
func NewShardMetrics(reg *Registry) *ShardMetrics {
	if reg == nil {
		return nil
	}
	hedge := func(o string) *Counter {
		return reg.Counter("podium_shard_hedges_total",
			"Hedged second requests issued past the latency deadline, by outcome.", L("outcome", o))
	}
	return &ShardMetrics{
		reg: reg,
		Selects: reg.Counter("podium_shard_selects_total",
			"Coordinator merge selections, by outcome.", L("outcome", "ok")),
		Degraded: reg.Counter("podium_shard_selects_total",
			"Coordinator merge selections, by outcome.", L("outcome", "degraded")),
		Fanouts: reg.Counter("podium_shard_requests_total",
			"Per-shard fan-out RPCs, by outcome.", L("outcome", "ok")),
		FanoutErrs: reg.Counter("podium_shard_requests_total",
			"Per-shard fan-out RPCs, by outcome.", L("outcome", "error")),
		Latency: reg.Histogram("podium_shard_fanout_seconds",
			"Fan-out wall time (slowest surviving shard).", DefLatencyBuckets),
		Shards: reg.Gauge("podium_shard_count",
			"Shard servers the coordinator is configured with."),
		Live: reg.Gauge("podium_shard_live",
			"Shards that answered the most recent fan-out."),
		Replicas: reg.Gauge("podium_shard_replica_count",
			"Replica servers configured across all shards."),
		Failovers: reg.Counter("podium_shard_failovers_total",
			"Routed shard calls that failed over to a sibling replica."),
		HedgesWon:  hedge("won"),
		HedgesLost: hedge("lost"),
		Stale: reg.Counter("podium_shard_stale_replicas_total",
			"Routing decisions that deprioritized a replica for a lagging epoch."),
		ProbeLat: reg.Histogram("podium_shard_probe_seconds",
			"Active replica health-probe round trips.", DefLatencyBuckets),
	}
}

// ReplicaUp returns the per-replica liveness gauge
// podium_shard_replica_up{shard,replica}: 1 while the registry considers the
// replica healthy, 0 once it has failed past its tolerance. Registration
// locks; the registry caches the handle per replica.
func (m *ShardMetrics) ReplicaUp(shard int, replica string) *Gauge {
	if m == nil {
		return nil
	}
	return m.reg.Gauge("podium_shard_replica_up",
		"Replica health by shard and replica URL (1 = healthy).",
		L("shard", itoa(shard)), L("replica", replica))
}

// CoreMetrics instruments the selection engine. The engine itself reports
// plain monotonic nanosecond totals through core.StageTimings (core does not
// import obs); the serving layer folds them in here after each run.
type CoreMetrics struct {
	Selections *Counter // podium_engine_selections_total
	stages     map[string]*Histogram
}

// CoreStageNames are the greedy engine's instrumented stages, in pipeline
// order: candidate/marginal initialization, per-pick argmax rounds,
// saturation retractions, and the sharded argmax merge.
var CoreStageNames = []string{"init", "argmax", "retract", "merge"}

// NewCoreMetrics registers the engine families on reg.
func NewCoreMetrics(reg *Registry) *CoreMetrics {
	if reg == nil {
		return nil
	}
	m := &CoreMetrics{
		Selections: reg.Counter("podium_engine_selections_total",
			"Greedy engine runs (uncached selections)."),
		stages: make(map[string]*Histogram, len(CoreStageNames)),
	}
	for _, st := range CoreStageNames {
		m.stages[st] = reg.Histogram("podium_engine_stage_seconds",
			"Greedy engine time per stage per run.", DefStageBuckets, L("stage", st))
	}
	return m
}

// ObserveStage records one run's total time in a named stage.
func (m *CoreMetrics) ObserveStage(stage string, d time.Duration) {
	if m == nil {
		return
	}
	m.stages[stage].Observe(d.Seconds())
}

// CampaignMetrics instruments the procurement campaign orchestrator.
type CampaignMetrics struct {
	Rounds        *Counter      // podium_campaign_rounds_total
	RepairRounds  *Counter      // podium_campaign_repair_rounds_total
	Waves         *Counter      // podium_campaign_waves_total
	Solicitations *Counter      // podium_campaign_solicitations_total
	Answered      *Counter      // podium_campaign_responses_total{outcome="answered"}
	Timeouts      *Counter      // {outcome="timeout"} — late + silent panelists
	Declined      *Counter      // {outcome="declined"}
	Recovered     *FloatCounter // podium_campaign_repair_coverage_recovered
}

// NewCampaignMetrics registers the campaign families on reg.
func NewCampaignMetrics(reg *Registry) *CampaignMetrics {
	if reg == nil {
		return nil
	}
	outcome := func(o string) *Counter {
		return reg.Counter("podium_campaign_responses_total",
			"Solicitation outcomes across all campaigns.", L("outcome", o))
	}
	return &CampaignMetrics{
		Rounds: reg.Counter("podium_campaign_rounds_total",
			"Campaign rounds closed (initial and repair)."),
		RepairRounds: reg.Counter("podium_campaign_repair_rounds_total",
			"Repair rounds closed (non-response replacement)."),
		Waves: reg.Counter("podium_campaign_waves_total",
			"Solicitation waves issued across all campaigns."),
		Solicitations: reg.Counter("podium_campaign_solicitations_total",
			"Individual user solicitations attempted."),
		Answered: outcome("answered"),
		Timeouts: outcome("timeout"),
		Declined: outcome("declined"),
		Recovered: reg.FloatCounter("podium_campaign_repair_coverage_recovered",
			"Coverage points recovered by repair rounds."),
	}
}

// ClientMetrics instruments the resilient HTTP client (retries and circuit
// breaker transitions).
type ClientMetrics struct {
	Retries  *Counter // podium_client_retries_total
	ToOpen   *Counter // podium_client_breaker_transitions_total{to="open"}
	ToClosed *Counter // {to="closed"}
	Probes   *Counter // podium_client_breaker_probes_total
}

// NewClientMetrics registers the client families on reg.
func NewClientMetrics(reg *Registry) *ClientMetrics {
	if reg == nil {
		return nil
	}
	trans := func(to string) *Counter {
		return reg.Counter("podium_client_breaker_transitions_total",
			"Circuit breaker state transitions.", L("to", to))
	}
	return &ClientMetrics{
		Retries: reg.Counter("podium_client_retries_total",
			"Request attempts beyond the first."),
		ToOpen:   trans("open"),
		ToClosed: trans("closed"),
		Probes: reg.Counter("podium_client_breaker_probes_total",
			"Half-open probe requests allowed through an open breaker."),
	}
}

func itoa(n int) string {
	// Hot path helper for status codes; avoid strconv for the common ones.
	switch n {
	case 200:
		return "200"
	case 400:
		return "400"
	case 404:
		return "404"
	case 405:
		return "405"
	case 429:
		return "429"
	case 500:
		return "500"
	case 503:
		return "503"
	}
	// n <= 0 must still yield a digit: shard indexes start at 0, and the
	// bare n > 0 loop below would render 0 as the empty string.
	if n <= 0 {
		return "0"
	}
	buf := [4]byte{}
	i := len(buf)
	for n > 0 && i > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
