// Package obs is podium's stdlib-only observability layer: an
// allocation-conscious metrics registry (atomic counters, gauges and
// fixed-bucket histograms) with a hand-rolled Prometheus text exposition,
// plus a lightweight span/trace facility (span.go) for per-request stage
// timing.
//
// Design constraints, in order:
//
//  1. Hot-path updates are single atomic operations. Counter.Inc is one
//     atomic add; Histogram.Observe is one bucket add plus one CAS loop on
//     the float sum. No locks, no maps, no allocation after registration.
//  2. Every metric method is nil-safe: a nil *Counter (etc.) is a no-op.
//     Layers accept an optional metrics struct and never branch on it.
//  3. Exposition is deterministic (families and children sorted) and
//     internally consistent: a histogram's _count is computed from the same
//     bucket reads as its _bucket lines, so the exposed cumulative series
//     never contradicts itself even while writers race the scrape.
//
// Registration (Registry.Counter / Gauge / Histogram) takes a lock and may
// allocate; it is meant for startup or first-touch on a cold label set, not
// per-request paths.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// A Label is one key="value" pair attached to a metric child.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing uint64. The zero value is ready to
// use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 value. A nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds d (may be negative).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatCounter is a monotonically increasing float64, updated by CAS on the
// raw bits. Used where the accumulated quantity is fractional (e.g. coverage
// points recovered by repair rounds). A nil *FloatCounter is a no-op.
type FloatCounter struct {
	bits atomic.Uint64
}

// Add adds d (d < 0 is ignored: the counter is monotone).
func (f *FloatCounter) Add(d float64) {
	if f == nil || d < 0 || math.IsNaN(d) {
		return
	}
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the accumulated total (0 for nil).
func (f *FloatCounter) Value() float64 {
	if f == nil {
		return 0
	}
	return math.Float64frombits(f.bits.Load())
}

// Histogram is a fixed-bucket histogram. Bounds are inclusive upper bounds in
// ascending order; an implicit +Inf bucket catches the rest. Observe is one
// atomic bucket increment plus a CAS on the float sum — no locks, no
// allocation. A nil *Histogram is a no-op.
//
// Snapshot consistency: exposition reads each bucket once and derives _count
// as the total of those reads, so the cumulative _bucket series and _count
// always agree with each other (the _sum may trail by in-flight observations,
// which Prometheus semantics permit).
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64   // float64 bits
}

// NewHistogram builds an unregistered histogram (mostly for tests; prefer
// Registry.Histogram). Bounds must be ascending.
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket counts are small (≤ ~16) and the slice is hot in
	// cache; this beats a binary search at these sizes.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	if v > 0 && !math.IsNaN(v) {
		for {
			old := h.sum.Load()
			next := math.Float64bits(math.Float64frombits(old) + v)
			if h.sum.CompareAndSwap(old, next) {
				return
			}
		}
	}
}

// Count returns the total number of observations (0 for nil), consistent
// with a single pass over the buckets.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum returns the accumulated sum of observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// DefLatencyBuckets are the default request-latency bounds, in seconds.
// Podium serves from in-memory snapshots, so the range starts at 100µs.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// metricKind discriminates exposition rendering.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindFloatCounter
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "counter"
	}
}

// child is one labeled instance inside a family.
type child struct {
	labels  string // rendered {k="v",...} or ""
	counter *Counter
	gauge   *Gauge
	fctr    *FloatCounter
	hist    *Histogram
}

// family groups all children sharing a metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	bounds []float64 // histograms only; fixed at first registration

	mu       sync.Mutex
	children map[string]*child
}

// Registry holds metric families and renders them in Prometheus text format.
// All methods are safe for concurrent use; a nil *Registry returns nil
// metrics from every constructor, so an uninstrumented stack threads nils
// all the way down at zero cost.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

func (r *Registry) familyFor(name, help string, kind metricKind, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, children: make(map[string]*child)}
		if kind == kindHistogram {
			f.bounds = append([]float64(nil), bounds...)
		}
		r.fams[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	return f
}

func (f *family) childFor(labels []Label) *child {
	key := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = &child{labels: key}
		switch f.kind {
		case kindCounter:
			c.counter = &Counter{}
		case kindGauge:
			c.gauge = &Gauge{}
		case kindFloatCounter:
			c.fctr = &FloatCounter{}
		case kindHistogram:
			c.hist = NewHistogram(f.bounds)
		}
		f.children[key] = c
	}
	return c
}

// Counter returns the counter registered under name with the given labels,
// creating it on first use. Repeat calls with the same name+labels return
// the same instance. A nil registry returns nil.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.familyFor(name, help, kindCounter, nil).childFor(labels).counter
}

// Gauge returns the gauge registered under name with the given labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.familyFor(name, help, kindGauge, nil).childFor(labels).gauge
}

// FloatCounter returns the float counter registered under name with the
// given labels. Exposed as a counter in the text format.
func (r *Registry) FloatCounter(name, help string, labels ...Label) *FloatCounter {
	if r == nil {
		return nil
	}
	return r.familyFor(name, help, kindFloatCounter, nil).childFor(labels).fctr
}

// Histogram returns the histogram registered under name with the given
// labels. Bounds are fixed by the first registration of the family;
// subsequent calls may pass nil bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	return r.familyFor(name, help, kindHistogram, bounds).childFor(labels).hist
}

// WriteText renders every family in Prometheus text exposition format
// (version 0.0.4): families sorted by name, children sorted by label
// signature, histograms with cumulative _bucket / _sum / _count lines.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.fams[name])
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, f := range fams {
		f.writeText(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) writeText(b *strings.Builder) {
	f.mu.Lock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	kids := make([]*child, 0, len(keys))
	for _, k := range keys {
		kids = append(kids, f.children[k])
	}
	f.mu.Unlock()

	if len(kids) == 0 {
		return
	}
	if f.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	for _, c := range kids {
		switch f.kind {
		case kindCounter:
			fmt.Fprintf(b, "%s%s %d\n", f.name, c.labels, c.counter.Value())
		case kindGauge:
			fmt.Fprintf(b, "%s%s %d\n", f.name, c.labels, c.gauge.Value())
		case kindFloatCounter:
			fmt.Fprintf(b, "%s%s %s\n", f.name, c.labels, formatFloat(c.fctr.Value()))
		case kindHistogram:
			writeHistogram(b, f.name, c)
		}
	}
}

// writeHistogram renders one histogram child. Each bucket is read exactly
// once; _count is the total of those reads, so the exposed series is
// internally consistent even under concurrent Observe calls.
func writeHistogram(b *strings.Builder, name string, c *child) {
	h := c.hist
	snap := make([]uint64, len(h.counts))
	for i := range h.counts {
		snap[i] = h.counts[i].Load()
	}
	var cum uint64
	for i, bound := range h.bounds {
		cum += snap[i]
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, mergeLabels(c.labels, `le="`+formatFloat(bound)+`"`), cum)
	}
	cum += snap[len(snap)-1]
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, mergeLabels(c.labels, `le="+Inf"`), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, c.labels, formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, c.labels, cum)
}

// renderLabels produces the canonical {k="v",...} form, keys sorted.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// mergeLabels inserts extra (already rendered, e.g. `le="0.5"`) into an
// existing rendered label set.
func mergeLabels(rendered, extra string) string {
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
