package obs

import "time"

// Span is one timed node in a per-request trace tree. Spans are built by a
// single goroutine (the request handler) and are not safe for concurrent
// mutation; completed subtrees may be attached from worker results via
// AttachChild. A nil *Span is a no-op everywhere, so handlers thread the
// root through unconditionally and only pay when tracing was requested.
type Span struct {
	name     string
	start    time.Time
	dur      time.Duration
	children []*Span
}

// StartSpan begins a new root span.
func StartSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// StartChild begins a child span under s (nil-safe: returns nil for nil s).
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.children = append(s.children, c)
	return c
}

// End stops the span's clock. Calling End twice keeps the first duration.
func (s *Span) End() {
	if s == nil || s.dur != 0 {
		return
	}
	s.dur = time.Since(s.start)
	if s.dur == 0 {
		s.dur = time.Nanosecond // keep End idempotent without losing the mark
	}
}

// AttachChild records a pre-measured child (e.g. an engine stage timing
// captured deep inside core, which does not depend on obs).
func (s *Span) AttachChild(name string, d time.Duration) {
	if s == nil {
		return
	}
	s.children = append(s.children, &Span{name: name, dur: d})
}

// SpanJSON is the wire form of a span tree, attached to select/query
// responses when the caller asks for a trace.
type SpanJSON struct {
	Name     string      `json:"name"`
	Ms       float64     `json:"ms"`
	Children []*SpanJSON `json:"children,omitempty"`
}

// JSON converts the span tree to its wire form, ending any spans still
// running. Returns nil for a nil span.
func (s *Span) JSON() *SpanJSON {
	if s == nil {
		return nil
	}
	s.End()
	out := &SpanJSON{Name: s.name, Ms: float64(s.dur) / 1e6}
	for _, c := range s.children {
		out.Children = append(out.Children, c.JSON())
	}
	return out
}
