// Package bucketing splits a property's score distribution into the
// non-overlapping score ranges β(p) that define Podium's simple user groups
// (Definition 3.4). The paper names several 1-d interval-splitting methods —
// Jenks natural breaks, k-means, expectation maximization and kernel
// density — all of which are implemented here, along with equal-width and
// quantile splits and automatic detection of Boolean properties.
package bucketing

import (
	"fmt"
	"math"
	"sort"
)

// Bucket is a score range b ⊆ [0,1]. The interval is closed below and, for
// every bucket except the last of a partition, open above — matching the
// paper's [0,0.4), [0.4,0.65), [0.65,1] running example. Boolean buckets are
// the degenerate points [0,0] and [1,1].
type Bucket struct {
	Lo, Hi   float64
	ClosedHi bool
}

// Contains reports whether x falls in the bucket.
func (b Bucket) Contains(x float64) bool {
	if x < b.Lo {
		return false
	}
	if b.ClosedHi {
		return x <= b.Hi
	}
	return x < b.Hi
}

// IsPoint reports whether the bucket is a single value (Boolean buckets).
func (b Bucket) IsPoint() bool { return b.Lo == b.Hi && b.ClosedHi }

// String renders the bucket in interval notation.
func (b Bucket) String() string {
	if b.IsPoint() {
		return fmt.Sprintf("[%.4g,%.4g]", b.Lo, b.Hi)
	}
	close := ")"
	if b.ClosedHi {
		close = "]"
	}
	return fmt.Sprintf("[%.4g,%.4g%s", b.Lo, b.Hi, close)
}

// Label returns the human-readable name of bucket i out of n, used to build
// group labels for explanations (Section 5). Boolean partitions are labeled
// false/true; three-way partitions low/medium/high; five-way partitions get
// the Likert-style names; anything else falls back to interval notation.
func Label(b Bucket, i, n int) string {
	if b.IsPoint() && (b.Lo == 0 || b.Lo == 1) {
		if b.Lo == 0 {
			return "false"
		}
		return "true"
	}
	switch n {
	case 1:
		return "all"
	case 2:
		return [2]string{"low", "high"}[i]
	case 3:
		return [3]string{"low", "medium", "high"}[i]
	case 4:
		return [4]string{"low", "medium-low", "medium-high", "high"}[i]
	case 5:
		return [5]string{"very low", "low", "medium", "high", "very high"}[i]
	}
	return b.String()
}

// FromEdges builds a partition of [0,1] from strictly increasing interior
// cut points (each in (0,1)). The first bucket starts at 0, the last ends at
// 1 and is closed above. Duplicate or out-of-range cuts are dropped.
func FromEdges(cuts []float64) []Bucket {
	clean := make([]float64, 0, len(cuts))
	for _, c := range cuts {
		if c <= 0 || c >= 1 || math.IsNaN(c) {
			continue
		}
		clean = append(clean, c)
	}
	sort.Float64s(clean)
	dedup := clean[:0]
	for i, c := range clean {
		if i > 0 && c == clean[i-1] {
			continue
		}
		dedup = append(dedup, c)
	}
	edges := make([]float64, 0, len(dedup)+2)
	edges = append(edges, 0)
	edges = append(edges, dedup...)
	edges = append(edges, 1)
	buckets := make([]Bucket, len(edges)-1)
	for i := 0; i+1 < len(edges); i++ {
		buckets[i] = Bucket{Lo: edges[i], Hi: edges[i+1], ClosedHi: i+2 == len(edges)}
	}
	return buckets
}

// BooleanBuckets is the two-point partition for Boolean properties ("the
// label of the bucket [1,1] is empty for Boolean properties", Example 5.2).
func BooleanBuckets() []Bucket {
	return []Bucket{{Lo: 0, Hi: 0, ClosedHi: true}, {Lo: 1, Hi: 1, ClosedHi: true}}
}

// IsBoolean reports whether every value is exactly 0 or 1.
func IsBoolean(values []float64) bool {
	if len(values) == 0 {
		return false
	}
	for _, v := range values {
		if v != 0 && v != 1 {
			return false
		}
	}
	return true
}

// Method is a 1-d interval-splitting strategy: given the ascending-sorted
// score values of one property and a target bucket count, it returns interior
// cut points in (0,1). Methods may return fewer cuts than k-1 when the data
// does not support k distinct intervals.
type Method interface {
	Name() string
	Cuts(sorted []float64, k int) []float64
}

// Split partitions a property's values into buckets: Boolean properties get
// the two point buckets; constant data collapses to a single bucket; any
// other data is cut by the method. Values need not be sorted. Split panics on
// k < 1 — a caller asking for zero buckets is always a bug.
func Split(values []float64, k int, m Method) []Bucket {
	if k < 1 {
		panic("bucketing: Split requires k >= 1")
	}
	if IsBoolean(values) {
		return BooleanBuckets()
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	if len(sorted) == 0 || sorted[0] == sorted[len(sorted)-1] || k == 1 {
		return FromEdges(nil) // single bucket [0,1]
	}
	if d := distinct(sorted); d < k {
		k = d
	}
	return FromEdges(m.Cuts(sorted, k))
}

func distinct(sorted []float64) int {
	n := 0
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] {
			n++
		}
	}
	return n
}

// Assign returns the index of the bucket containing x, or -1 when no bucket
// does (possible only for malformed partitions or out-of-range scores).
func Assign(buckets []Bucket, x float64) int {
	for i, b := range buckets {
		if b.Contains(x) {
			return i
		}
	}
	return -1
}
