package bucketing

import (
	"math"

	"podium/internal/stats"
)

// EqualWidth cuts [0,1] into k intervals of identical width, ignoring the
// data distribution. Cheap, and the right choice when bucket semantics are
// fixed a priori (the paper's low/medium/high example uses hand-picked cuts).
type EqualWidth struct{}

// Name implements Method.
func (EqualWidth) Name() string { return "equal-width" }

// Cuts implements Method.
func (EqualWidth) Cuts(sorted []float64, k int) []float64 {
	cuts := make([]float64, 0, k-1)
	for i := 1; i < k; i++ {
		cuts = append(cuts, float64(i)/float64(k))
	}
	return cuts
}

// Fixed applies predetermined interior cut points regardless of the data —
// the paper's running example uses the hand-picked cuts {0.4, 0.65} for its
// low/medium/high buckets (Example 3.8). Boolean detection still applies
// before the method is consulted.
type Fixed struct{ Interior []float64 }

// Name implements Method.
func (Fixed) Name() string { return "fixed" }

// Cuts implements Method.
func (f Fixed) Cuts(sorted []float64, k int) []float64 { return f.Interior }

// Quantile cuts at the i/k-th quantiles so each bucket holds roughly the
// same number of users.
type Quantile struct{}

// Name implements Method.
func (Quantile) Name() string { return "quantile" }

// Cuts implements Method.
func (Quantile) Cuts(sorted []float64, k int) []float64 {
	cuts := make([]float64, 0, k-1)
	for i := 1; i < k; i++ {
		cuts = append(cuts, stats.QuantileSorted(sorted, float64(i)/float64(k)))
	}
	return cuts
}

// Jenks implements the Fisher-Jenks "natural breaks" optimization [Jenks
// 1967]: the exact dynamic program that minimizes the total within-bucket
// sum of squared deviations. Exact DP costs O(k·n²); above MaxSample values
// the input is decimated to every n/MaxSample-th order statistic first, which
// preserves the distribution shape the breaks depend on.
type Jenks struct {
	// MaxSample bounds the DP input size; 0 selects the default of 1024.
	MaxSample int
}

// Name implements Method.
func (Jenks) Name() string { return "jenks" }

// Cuts implements Method.
func (j Jenks) Cuts(sorted []float64, k int) []float64 {
	maxN := j.MaxSample
	if maxN <= 0 {
		maxN = 1024
	}
	xs := decimate(sorted, maxN)
	n := len(xs)
	if k >= n {
		return midpointsBetweenDistinct(xs)
	}
	// Prefix sums for O(1) within-class SSD:
	// ssd(i,j) = Σx² - (Σx)²/m over xs[i..j).
	pref := make([]float64, n+1)
	prefSq := make([]float64, n+1)
	for i, x := range xs {
		pref[i+1] = pref[i] + x
		prefSq[i+1] = prefSq[i] + x*x
	}
	ssd := func(i, j int) float64 {
		m := float64(j - i)
		s := pref[j] - pref[i]
		return (prefSq[j] - prefSq[i]) - s*s/m
	}
	const inf = math.MaxFloat64
	// cost[c][j]: minimal SSD splitting xs[0..j) into c buckets.
	prev := make([]float64, n+1)
	cur := make([]float64, n+1)
	split := make([][]int, k+1) // split[c][j] = start of the last bucket
	for c := range split {
		split[c] = make([]int, n+1)
	}
	for j := 0; j <= n; j++ {
		if j == 0 {
			prev[j] = 0
		} else {
			prev[j] = ssd(0, j)
		}
	}
	for c := 2; c <= k; c++ {
		for j := 0; j <= n; j++ {
			cur[j] = inf
			if j < c {
				continue
			}
			for i := c - 1; i < j; i++ {
				if v := prev[i] + ssd(i, j); v < cur[j] {
					cur[j] = v
					split[c][j] = i
				}
			}
		}
		prev, cur = cur, prev
	}
	// Walk the split table back from (k, n) to recover bucket starts.
	starts := make([]int, 0, k-1)
	end := n
	for c := k; c >= 2; c-- {
		i := split[c][end]
		starts = append(starts, i)
		end = i
	}
	// starts are in reverse order; each start i yields a cut between
	// xs[i-1] and xs[i].
	cuts := make([]float64, 0, len(starts))
	for idx := len(starts) - 1; idx >= 0; idx-- {
		i := starts[idx]
		if i <= 0 || i >= n {
			continue
		}
		cuts = append(cuts, (xs[i-1]+xs[i])/2)
	}
	return cuts
}

// decimate keeps at most maxN evenly spaced order statistics of sorted.
func decimate(sorted []float64, maxN int) []float64 {
	n := len(sorted)
	if n <= maxN {
		return sorted
	}
	out := make([]float64, maxN)
	for i := 0; i < maxN; i++ {
		out[i] = sorted[i*(n-1)/(maxN-1)]
	}
	return out
}

// midpointsBetweenDistinct returns a cut between every pair of adjacent
// distinct values — the exact solution when k is at least the number of
// distinct values.
func midpointsBetweenDistinct(sorted []float64) []float64 {
	var cuts []float64
	for i := 1; i < len(sorted); i++ {
		if sorted[i] != sorted[i-1] {
			cuts = append(cuts, (sorted[i-1]+sorted[i])/2)
		}
	}
	return cuts
}

// KMeans is Lloyd's algorithm specialized to one dimension: centers are
// initialized at evenly spaced quantiles (deterministic — no seeding
// sensitivity in 1-d), assignment boundaries are midpoints between adjacent
// centers, and iteration proceeds to convergence or MaxIter.
type KMeans struct {
	// MaxIter bounds Lloyd iterations; 0 selects the default of 64.
	MaxIter int
}

// Name implements Method.
func (KMeans) Name() string { return "kmeans" }

// Cuts implements Method.
func (km KMeans) Cuts(sorted []float64, k int) []float64 {
	maxIter := km.MaxIter
	if maxIter <= 0 {
		maxIter = 64
	}
	centers := make([]float64, k)
	for i := range centers {
		centers[i] = stats.QuantileSorted(sorted, (float64(i)+0.5)/float64(k))
	}
	bounds := make([]int, k+1) // bounds[c]..bounds[c+1] is cluster c's slice
	for iter := 0; iter < maxIter; iter++ {
		// Assignment: in 1-d the optimal assignment is by midpoint
		// boundaries between adjacent centers.
		bounds[0], bounds[k] = 0, len(sorted)
		idx := 0
		for c := 0; c+1 < k; c++ {
			mid := (centers[c] + centers[c+1]) / 2
			for idx < len(sorted) && sorted[idx] < mid {
				idx++
			}
			bounds[c+1] = idx
		}
		// Update.
		moved := false
		for c := 0; c < k; c++ {
			lo, hi := bounds[c], bounds[c+1]
			if lo >= hi {
				continue // empty cluster keeps its center
			}
			var sum float64
			for _, x := range sorted[lo:hi] {
				sum += x
			}
			m := sum / float64(hi-lo)
			if m != centers[c] {
				centers[c] = m
				moved = true
			}
		}
		if !moved {
			break
		}
	}
	cuts := make([]float64, 0, k-1)
	for c := 0; c+1 < k; c++ {
		lo, hi := bounds[c], bounds[c+1]
		if lo >= hi {
			continue
		}
		// Cut between this cluster's last point and the next non-empty
		// cluster's first point.
		next := bounds[c+1]
		if next < len(sorted) && sorted[hi-1] != sorted[next] {
			cuts = append(cuts, (sorted[hi-1]+sorted[next])/2)
		}
	}
	return cuts
}
