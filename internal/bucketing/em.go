package bucketing

import (
	"math"

	"podium/internal/stats"
)

// EM fits a one-dimensional Gaussian mixture with k components by
// expectation maximization and cuts between adjacent components where
// posterior responsibility switches. Means start at evenly spaced quantiles
// (deterministic), variances at the pooled variance, weights uniform.
type EM struct {
	// MaxIter bounds EM iterations; 0 selects the default of 100.
	MaxIter int
	// Tol is the log-likelihood convergence tolerance; 0 selects 1e-7.
	Tol float64
}

// Name implements Method.
func (EM) Name() string { return "em" }

// Cuts implements Method.
func (em EM) Cuts(sorted []float64, k int) []float64 {
	maxIter := em.MaxIter
	if maxIter <= 0 {
		maxIter = 100
	}
	tol := em.Tol
	if tol <= 0 {
		tol = 1e-7
	}
	n := len(sorted)
	means := make([]float64, k)
	for i := range means {
		means[i] = stats.QuantileSorted(sorted, (float64(i)+0.5)/float64(k))
	}
	pooled := stats.Variance(sorted)
	const varFloor = 1e-6
	if pooled < varFloor {
		pooled = varFloor
	}
	vars := make([]float64, k)
	weights := make([]float64, k)
	for i := range vars {
		vars[i] = pooled
		weights[i] = 1 / float64(k)
	}
	resp := make([][]float64, k)
	for c := range resp {
		resp[c] = make([]float64, n)
	}
	prevLL := math.Inf(-1)
	for iter := 0; iter < maxIter; iter++ {
		// E step.
		var ll float64
		for i, x := range sorted {
			var total float64
			for c := 0; c < k; c++ {
				p := weights[c] * gaussian(x, means[c], vars[c])
				resp[c][i] = p
				total += p
			}
			if total <= 0 {
				// Numerically dead point: spread responsibility uniformly.
				for c := 0; c < k; c++ {
					resp[c][i] = 1 / float64(k)
				}
				total = 1
				ll += math.Log(1e-300)
			} else {
				for c := 0; c < k; c++ {
					resp[c][i] /= total
				}
				ll += math.Log(total)
			}
		}
		// M step.
		for c := 0; c < k; c++ {
			var nc, mean float64
			for i, x := range sorted {
				nc += resp[c][i]
				mean += resp[c][i] * x
			}
			if nc < 1e-12 {
				continue // dying component keeps its parameters
			}
			mean /= nc
			var v float64
			for i, x := range sorted {
				d := x - mean
				v += resp[c][i] * d * d
			}
			v /= nc
			if v < varFloor {
				v = varFloor
			}
			means[c], vars[c], weights[c] = mean, v, nc/float64(n)
		}
		if ll-prevLL < tol && iter > 0 {
			break
		}
		prevLL = ll
	}
	// Cut where the max-posterior component changes along the sorted data.
	assign := func(x float64) int {
		best, bestP := 0, -1.0
		for c := 0; c < k; c++ {
			if p := weights[c] * gaussian(x, means[c], vars[c]); p > bestP {
				best, bestP = c, p
			}
		}
		return best
	}
	var cuts []float64
	prev := assign(sorted[0])
	for i := 1; i < n; i++ {
		cur := assign(sorted[i])
		if cur != prev && sorted[i] != sorted[i-1] {
			cuts = append(cuts, (sorted[i-1]+sorted[i])/2)
		}
		prev = cur
	}
	return cuts
}

func gaussian(x, mean, variance float64) float64 {
	d := x - mean
	return math.Exp(-d*d/(2*variance)) / math.Sqrt(2*math.Pi*variance)
}

// KDEValleys cuts at local minima of a Gaussian kernel density estimate of
// the score distribution — the "kernel density" splitting the paper names.
// The number of buckets is data-driven; when the density has more than k-1
// valleys, the k-1 lowest-density valleys are kept.
type KDEValleys struct {
	// GridSize is the density evaluation grid over [0,1]; 0 selects 256.
	GridSize int
	// Bandwidth overrides Silverman's rule when positive.
	Bandwidth float64
}

// Name implements Method.
func (KDEValleys) Name() string { return "kde-valleys" }

// Cuts implements Method.
func (kv KDEValleys) Cuts(sorted []float64, k int) []float64 {
	grid := kv.GridSize
	if grid <= 0 {
		grid = 256
	}
	kde := stats.NewKDE(sorted, kv.Bandwidth)
	valleys := kde.Valleys(0, 1, grid)
	if len(valleys) <= k-1 {
		return valleys
	}
	// Keep the k-1 deepest valleys, then restore x-order (FromEdges sorts
	// anyway, but being explicit keeps the contract obvious).
	type vd struct{ x, d float64 }
	vds := make([]vd, len(valleys))
	for i, v := range valleys {
		vds[i] = vd{v, kde.Density(v)}
	}
	for i := 0; i < k-1; i++ {
		min := i
		for j := i + 1; j < len(vds); j++ {
			if vds[j].d < vds[min].d {
				min = j
			}
		}
		vds[i], vds[min] = vds[min], vds[i]
	}
	cuts := make([]float64, k-1)
	for i := 0; i < k-1; i++ {
		cuts[i] = vds[i].x
	}
	return cuts
}
