package bucketing

import (
	"math"
	"testing"
	"testing/quick"

	"podium/internal/stats"
)

func TestBucketContains(t *testing.T) {
	open := Bucket{Lo: 0.4, Hi: 0.65}
	cases := []struct {
		x    float64
		want bool
	}{
		{0.4, true}, {0.5, true}, {0.65, false}, {0.39, false},
	}
	for _, c := range cases {
		if got := open.Contains(c.x); got != c.want {
			t.Errorf("open.Contains(%v) = %v", c.x, got)
		}
	}
	closed := Bucket{Lo: 0.65, Hi: 1, ClosedHi: true}
	if !closed.Contains(1) || !closed.Contains(0.65) || closed.Contains(0.64) {
		t.Error("closed bucket boundaries wrong")
	}
	point := Bucket{Lo: 1, Hi: 1, ClosedHi: true}
	if !point.Contains(1) || point.Contains(0.999) {
		t.Error("point bucket wrong")
	}
	if !point.IsPoint() || closed.IsPoint() {
		t.Error("IsPoint wrong")
	}
}

func TestBucketString(t *testing.T) {
	if got := (Bucket{Lo: 0, Hi: 0.4}).String(); got != "[0,0.4)" {
		t.Errorf("String = %q", got)
	}
	if got := (Bucket{Lo: 0.65, Hi: 1, ClosedHi: true}).String(); got != "[0.65,1]" {
		t.Errorf("String = %q", got)
	}
	if got := (Bucket{Lo: 1, Hi: 1, ClosedHi: true}).String(); got != "[1,1]" {
		t.Errorf("String = %q", got)
	}
}

func TestLabels(t *testing.T) {
	bools := BooleanBuckets()
	if Label(bools[0], 0, 2) != "false" || Label(bools[1], 1, 2) != "true" {
		t.Error("Boolean labels wrong")
	}
	three := FromEdges([]float64{0.4, 0.65})
	want := []string{"low", "medium", "high"}
	for i, b := range three {
		if got := Label(b, i, 3); got != want[i] {
			t.Errorf("Label[%d] = %q, want %q", i, got, want[i])
		}
	}
	five := FromEdges([]float64{0.2, 0.4, 0.6, 0.8})
	if Label(five[0], 0, 5) != "very low" || Label(five[4], 4, 5) != "very high" {
		t.Error("five-way labels wrong")
	}
	if Label(FromEdges(nil)[0], 0, 1) != "all" {
		t.Error("single-bucket label wrong")
	}
	seven := FromEdges([]float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6})
	if got := Label(seven[0], 0, 7); got != "[0,0.1)" {
		t.Errorf("fallback label = %q", got)
	}
}

func TestFromEdgesPartition(t *testing.T) {
	bs := FromEdges([]float64{0.4, 0.65})
	if len(bs) != 3 {
		t.Fatalf("buckets = %v", bs)
	}
	if bs[0].Lo != 0 || bs[2].Hi != 1 || !bs[2].ClosedHi || bs[0].ClosedHi {
		t.Fatalf("partition edges wrong: %v", bs)
	}
}

func TestFromEdgesDropsBadCuts(t *testing.T) {
	bs := FromEdges([]float64{0.5, 0.5, -1, 2, 0, 1, math.NaN()})
	if len(bs) != 2 {
		t.Fatalf("buckets = %v, want 2 (single valid cut)", bs)
	}
}

func TestIsBoolean(t *testing.T) {
	if !IsBoolean([]float64{0, 1, 1, 0}) {
		t.Error("0/1 data not detected as Boolean")
	}
	if IsBoolean([]float64{0, 0.5}) {
		t.Error("non-Boolean data detected as Boolean")
	}
	if IsBoolean(nil) {
		t.Error("empty data detected as Boolean")
	}
}

func TestSplitBooleanDetection(t *testing.T) {
	bs := Split([]float64{1, 1, 0}, 3, EqualWidth{})
	if len(bs) != 2 || !bs[0].IsPoint() || !bs[1].IsPoint() {
		t.Fatalf("Boolean split = %v", bs)
	}
}

func TestSplitConstantData(t *testing.T) {
	bs := Split([]float64{0.5, 0.5, 0.5}, 3, Quantile{})
	if len(bs) != 1 {
		t.Fatalf("constant split = %v, want single bucket", bs)
	}
	if !bs[0].Contains(0.5) {
		t.Fatal("single bucket misses the constant")
	}
}

func TestSplitEmptyData(t *testing.T) {
	bs := Split(nil, 3, EqualWidth{})
	if len(bs) != 1 {
		t.Fatalf("empty split = %v", bs)
	}
}

func TestSplitFewDistinctValues(t *testing.T) {
	// Two distinct non-Boolean values, k=3: at most 2 buckets.
	bs := Split([]float64{0.2, 0.2, 0.8, 0.8}, 3, KMeans{})
	if len(bs) > 2 {
		t.Fatalf("split = %v, want <= 2 buckets", bs)
	}
	if Assign(bs, 0.2) == Assign(bs, 0.8) {
		t.Fatal("distinct values share a bucket despite k >= distinct")
	}
}

func TestSplitPanicsOnZeroK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 did not panic")
		}
	}()
	Split([]float64{0.1}, 0, EqualWidth{})
}

func TestAssignUnmatched(t *testing.T) {
	if got := Assign(BooleanBuckets(), 0.5); got != -1 {
		t.Fatalf("Assign = %d, want -1", got)
	}
}

func TestEqualWidthCuts(t *testing.T) {
	cuts := EqualWidth{}.Cuts([]float64{0.1, 0.9}, 4)
	want := []float64{0.25, 0.5, 0.75}
	if len(cuts) != len(want) {
		t.Fatalf("cuts = %v", cuts)
	}
	for i := range want {
		if math.Abs(cuts[i]-want[i]) > 1e-12 {
			t.Fatalf("cuts = %v, want %v", cuts, want)
		}
	}
}

func TestQuantileBalanced(t *testing.T) {
	rng := stats.NewRand(1)
	values := make([]float64, 999)
	for i := range values {
		values[i] = rng.Float64()
	}
	bs := Split(values, 3, Quantile{})
	if len(bs) != 3 {
		t.Fatalf("buckets = %v", bs)
	}
	counts := make([]int, 3)
	for _, v := range values {
		counts[Assign(bs, v)]++
	}
	for i, c := range counts {
		if c < 283 || c > 383 { // 333 ± 50
			t.Fatalf("bucket %d holds %d of 999, want ~333 (buckets %v)", i, c, bs)
		}
	}
}

func bimodalSample(seed int64, n int) []float64 {
	rng := stats.NewRand(seed)
	xs := make([]float64, n)
	for i := range xs {
		mode := 0.25
		if i%2 == 1 {
			mode = 0.75
		}
		xs[i] = stats.Clamp(mode+0.05*rng.NormFloat64(), 0, 1)
	}
	return xs
}

// Every data-driven method must place a k=2 cut inside the obvious gap of a
// well-separated bimodal sample.
func TestMethodsFindBimodalGap(t *testing.T) {
	xs := bimodalSample(11, 400)
	for _, m := range []Method{Jenks{}, KMeans{}, EM{}, KDEValleys{}, Quantile{}} {
		bs := Split(xs, 2, m)
		if len(bs) != 2 {
			t.Errorf("%s: buckets = %v, want 2", m.Name(), bs)
			continue
		}
		cut := bs[0].Hi
		if cut < 0.4 || cut > 0.6 {
			t.Errorf("%s: cut at %v, want inside (0.4,0.6)", m.Name(), cut)
		}
	}
}

func TestJenksExactSmallCase(t *testing.T) {
	// Three tight groups; Jenks with k=3 must cut in both gaps.
	xs := []float64{0.1, 0.11, 0.12, 0.5, 0.51, 0.52, 0.9, 0.91, 0.92}
	bs := Split(xs, 3, Jenks{})
	if len(bs) != 3 {
		t.Fatalf("buckets = %v", bs)
	}
	if !(bs[0].Hi > 0.12 && bs[0].Hi < 0.5) {
		t.Fatalf("first cut %v not in the first gap", bs[0].Hi)
	}
	if !(bs[1].Hi > 0.52 && bs[1].Hi < 0.9) {
		t.Fatalf("second cut %v not in the second gap", bs[1].Hi)
	}
}

func TestJenksDecimationPreservesShape(t *testing.T) {
	xs := bimodalSample(13, 20000)
	bs := Split(xs, 2, Jenks{MaxSample: 256})
	if len(bs) != 2 {
		t.Fatalf("buckets = %v", bs)
	}
	if cut := bs[0].Hi; cut < 0.4 || cut > 0.6 {
		t.Fatalf("decimated Jenks cut at %v", cut)
	}
}

func TestKMeansDeterministic(t *testing.T) {
	xs := bimodalSample(17, 500)
	a := Split(xs, 3, KMeans{})
	b := Split(xs, 3, KMeans{})
	if len(a) != len(b) {
		t.Fatal("nondeterministic bucket count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic buckets")
		}
	}
}

func TestEMTrimodal(t *testing.T) {
	rng := stats.NewRand(19)
	var xs []float64
	for i := 0; i < 200; i++ {
		for _, mode := range []float64{0.15, 0.5, 0.85} {
			xs = append(xs, stats.Clamp(mode+0.04*rng.NormFloat64(), 0, 1))
		}
	}
	bs := Split(xs, 3, EM{})
	if len(bs) != 3 {
		t.Fatalf("EM buckets = %v, want 3", bs)
	}
	for i, center := range []float64{0.15, 0.5, 0.85} {
		if Assign(bs, center) != i {
			t.Fatalf("mode %v lands in bucket %d (buckets %v)", center, Assign(bs, center), bs)
		}
	}
}

func TestKDEValleysCapsAtK(t *testing.T) {
	// Four modes → three valleys, but k=2 allows only one cut.
	rng := stats.NewRand(23)
	var xs []float64
	for i := 0; i < 150; i++ {
		for _, mode := range []float64{0.1, 0.37, 0.63, 0.9} {
			xs = append(xs, stats.Clamp(mode+0.03*rng.NormFloat64(), 0, 1))
		}
	}
	bs := Split(xs, 2, KDEValleys{})
	if len(bs) != 2 {
		t.Fatalf("buckets = %v, want exactly 2", bs)
	}
}

// Property: for any data and any method, Split yields a partition — buckets
// tile [0,1] in order, and every in-range value is assigned to exactly one
// bucket (Boolean partitions exempt non-{0,1} values by construction).
func TestSplitPartitionProperty(t *testing.T) {
	methods := []Method{EqualWidth{}, Quantile{}, Jenks{}, KMeans{}, EM{MaxIter: 20}, KDEValleys{GridSize: 64}}
	f := func(raw []uint16, kRaw uint8, mIdx uint8) bool {
		values := make([]float64, len(raw))
		for i, r := range raw {
			values[i] = float64(r) / math.MaxUint16
		}
		k := int(kRaw%5) + 1
		m := methods[int(mIdx)%len(methods)]
		bs := Split(values, k, m)
		if len(bs) == 0 {
			return false
		}
		if IsBoolean(values) {
			return len(bs) == 2 && bs[0].IsPoint() && bs[1].IsPoint()
		}
		// Tiling: contiguous, starts at 0, ends closed at 1.
		if bs[0].Lo != 0 || bs[len(bs)-1].Hi != 1 || !bs[len(bs)-1].ClosedHi {
			return false
		}
		for i := 1; i < len(bs); i++ {
			if bs[i].Lo != bs[i-1].Hi || bs[i-1].ClosedHi {
				return false
			}
		}
		// Exactly-one assignment for every value.
		for _, v := range values {
			n := 0
			for _, b := range bs {
				if b.Contains(v) {
					n++
				}
			}
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
