package bucketing

import (
	"math"
	"testing"
)

// FuzzSplit feeds arbitrary byte-derived score data through every bucketing
// method: Split must never panic and must always return a valid partition
// that assigns each input value to exactly one bucket.
func FuzzSplit(f *testing.F) {
	f.Add([]byte{}, uint8(3), uint8(0))
	f.Add([]byte{0, 255, 128}, uint8(2), uint8(1))
	f.Add([]byte{1, 1, 1, 1}, uint8(5), uint8(2))
	f.Add([]byte{0, 0, 255, 255}, uint8(1), uint8(3))

	methods := []Method{EqualWidth{}, Quantile{}, Jenks{MaxSample: 128}, KMeans{}, EM{MaxIter: 10}, KDEValleys{GridSize: 32}}
	f.Fuzz(func(t *testing.T, raw []byte, kRaw, mRaw uint8) {
		if len(raw) > 512 {
			raw = raw[:512] // keep the O(k·n²) DP bounded
		}
		values := make([]float64, len(raw))
		for i, b := range raw {
			values[i] = float64(b) / 255
		}
		k := int(kRaw%6) + 1
		m := methods[int(mRaw)%len(methods)]
		bs := Split(values, k, m)
		if len(bs) == 0 {
			t.Fatal("empty partition")
		}
		if IsBoolean(values) {
			return
		}
		if bs[0].Lo != 0 || bs[len(bs)-1].Hi != 1 || !bs[len(bs)-1].ClosedHi {
			t.Fatalf("partition does not tile [0,1]: %v", bs)
		}
		for _, v := range values {
			n := 0
			for _, b := range bs {
				if b.Contains(v) {
					n++
				}
			}
			if n != 1 {
				t.Fatalf("value %v in %d buckets of %v", v, n, bs)
			}
		}
		if math.IsNaN(bs[0].Lo) {
			t.Fatal("NaN bucket edge")
		}
	})
}
