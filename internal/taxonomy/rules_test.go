package taxonomy

import (
	"math"
	"testing"

	"podium/internal/profile"
)

func score(t *testing.T, repo *profile.Repository, u profile.UserID, label string) float64 {
	t.Helper()
	id, ok := repo.Catalog().Lookup(label)
	if !ok {
		t.Fatalf("property %q not interned", label)
	}
	s, ok := repo.Profile(u).Score(id)
	if !ok {
		t.Fatalf("user %d lacks %q", u, label)
	}
	return s
}

func hasProp(repo *profile.Repository, u profile.UserID, label string) bool {
	id, ok := repo.Catalog().Lookup(label)
	if !ok {
		return false
	}
	return repo.Profile(u).Has(id)
}

func TestGeneralizationMean(t *testing.T) {
	tax := cuisineTaxonomy(t)
	repo := profile.NewRepository()
	u := repo.AddUser("A")
	repo.MustSetScore(u, "avgRating Mexican", 0.9)
	repo.MustSetScore(u, "avgRating Brazilian", 0.5)
	repo.MustSetScore(u, "avgRating Japanese", 0.1)

	n, err := GeneralizationRule{Prefix: "avgRating ", Tax: tax, Agg: AggMean}.Apply(repo)
	if err != nil {
		t.Fatal(err)
	}
	// Derived: Latin, Asian, World for user A.
	if n != 3 {
		t.Fatalf("derived %d, want 3", n)
	}
	if got := score(t, repo, u, "avgRating Latin"); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("Latin = %v, want 0.7", got)
	}
	if got := score(t, repo, u, "avgRating Asian"); got != 0.1 {
		t.Fatalf("Asian = %v, want 0.1", got)
	}
	// World aggregates the three leaves: mean(0.9, 0.5, 0.1) = 0.5.
	if got := score(t, repo, u, "avgRating World"); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("World = %v, want 0.5", got)
	}
}

func TestGeneralizationSumCapped(t *testing.T) {
	tax := cuisineTaxonomy(t)
	repo := profile.NewRepository()
	u := repo.AddUser("A")
	repo.MustSetScore(u, "visitFreq Mexican", 0.7)
	repo.MustSetScore(u, "visitFreq Brazilian", 0.6)

	if _, err := (GeneralizationRule{Prefix: "visitFreq ", Tax: tax, Agg: AggSumCapped}).Apply(repo); err != nil {
		t.Fatal(err)
	}
	if got := score(t, repo, u, "visitFreq Latin"); got != 1 {
		t.Fatalf("Latin = %v, want 1 (capped)", got)
	}
}

func TestGeneralizationMax(t *testing.T) {
	tax := cuisineTaxonomy(t)
	repo := profile.NewRepository()
	u := repo.AddUser("A")
	repo.MustSetScore(u, "visited Mexican", 1)
	repo.MustSetScore(u, "visited Japanese", 0)

	if _, err := (GeneralizationRule{Prefix: "visited ", Tax: tax, Agg: AggMax}).Apply(repo); err != nil {
		t.Fatal(err)
	}
	if got := score(t, repo, u, "visited World"); got != 1 {
		t.Fatalf("World = %v, want 1", got)
	}
	if got := score(t, repo, u, "visited Asian"); got != 0 {
		t.Fatalf("Asian = %v, want 0", got)
	}
}

func TestGeneralizationDoesNotOverwriteExplicit(t *testing.T) {
	tax := cuisineTaxonomy(t)
	repo := profile.NewRepository()
	u := repo.AddUser("A")
	repo.MustSetScore(u, "avgRating Mexican", 0.9)
	repo.MustSetScore(u, "avgRating Latin", 0.2) // explicit, must survive

	if _, err := (GeneralizationRule{Prefix: "avgRating ", Tax: tax, Agg: AggMean}).Apply(repo); err != nil {
		t.Fatal(err)
	}
	if got := score(t, repo, u, "avgRating Latin"); got != 0.2 {
		t.Fatalf("explicit Latin overwritten: %v", got)
	}
}

func TestGeneralizationSkipsUsersWithoutSources(t *testing.T) {
	tax := cuisineTaxonomy(t)
	repo := profile.NewRepository()
	a := repo.AddUser("A")
	b := repo.AddUser("B")
	repo.MustSetScore(a, "avgRating Mexican", 0.9)
	repo.MustSetScore(b, "other prop", 0.5)

	if _, err := (GeneralizationRule{Prefix: "avgRating ", Tax: tax, Agg: AggMean}).Apply(repo); err != nil {
		t.Fatal(err)
	}
	if hasProp(repo, b, "avgRating Latin") {
		t.Fatal("user without sources was enriched (open world violated)")
	}
}

func TestGeneralizationIgnoresDerivedSources(t *testing.T) {
	// Applying the rule twice must not derive from its own output.
	tax := cuisineTaxonomy(t)
	repo := profile.NewRepository()
	u := repo.AddUser("A")
	repo.MustSetScore(u, "avgRating Mexican", 0.8)
	rule := GeneralizationRule{Prefix: "avgRating ", Tax: tax, Agg: AggMean}
	if _, err := rule.Apply(repo); err != nil {
		t.Fatal(err)
	}
	firstWorld := score(t, repo, u, "avgRating World")
	n, err := rule.Apply(repo)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("second application derived %d new scores", n)
	}
	if got := score(t, repo, u, "avgRating World"); got != firstWorld {
		t.Fatalf("World changed on re-application: %v vs %v", got, firstWorld)
	}
}

func TestGeneralizationNilTaxonomy(t *testing.T) {
	repo := profile.NewRepository()
	if _, err := (GeneralizationRule{Prefix: "p ", Agg: AggMean}).Apply(repo); err == nil {
		t.Fatal("nil taxonomy accepted")
	}
}

func TestFunctionalRuleInfersFalsehood(t *testing.T) {
	// Example 3.2: livesIn is functional; Alice livesIn Tokyo implies
	// livesIn X = 0 for every other known city.
	repo := profile.PaperExample()
	n, err := FunctionalRule{Prefix: "livesIn "}.Apply(repo)
	if err != nil {
		t.Fatal(err)
	}
	// 4 cities; each of the 5 users holds one and gains 3 falsehoods.
	if n != 15 {
		t.Fatalf("derived %d, want 15", n)
	}
	alice := profile.UserID(0)
	if got := score(t, repo, alice, "livesIn NYC"); got != 0 {
		t.Fatalf("livesIn NYC = %v, want 0", got)
	}
	if got := score(t, repo, alice, "livesIn Tokyo"); got != 1 {
		t.Fatalf("livesIn Tokyo = %v, want 1", got)
	}
}

func TestFunctionalRuleOpenWorldWithoutPositive(t *testing.T) {
	repo := profile.NewRepository()
	a := repo.AddUser("A")
	b := repo.AddUser("B")
	repo.MustSetScore(a, "livesIn Tokyo", 1)
	repo.MustSetScore(b, "unrelated", 0.5)

	if _, err := (FunctionalRule{Prefix: "livesIn "}).Apply(repo); err != nil {
		t.Fatal(err)
	}
	// B has no residence: nothing may be inferred.
	if hasProp(repo, b, "livesIn Tokyo") {
		t.Fatal("falsehood inferred for user with no positive variant")
	}
}

func TestFunctionalRuleExplicitVariants(t *testing.T) {
	repo := profile.NewRepository()
	a := repo.AddUser("A")
	repo.MustSetScore(a, "livesIn Tokyo", 1)

	rule := FunctionalRule{Prefix: "livesIn ", Variants: []string{"Tokyo", "NYC", "Paris"}}
	n, err := rule.Apply(repo)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("derived %d, want 2", n)
	}
	if got := score(t, repo, a, "livesIn Paris"); got != 0 {
		t.Fatalf("livesIn Paris = %v", got)
	}
}

func TestEngineRunsRulesInOrder(t *testing.T) {
	tax := cuisineTaxonomy(t)
	repo := profile.NewRepository()
	u := repo.AddUser("A")
	repo.MustSetScore(u, "avgRating Mexican", 0.9)
	repo.MustSetScore(u, "livesIn Tokyo", 1)
	repo.MustSetScore(u, "livesIn NYC", 0) // known falsehood stays

	eng := NewEngine(
		GeneralizationRule{Prefix: "avgRating ", Tax: tax, Agg: AggMean},
	)
	eng.Add(FunctionalRule{Prefix: "livesIn "})
	counts, err := eng.Run(repo)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 2 {
		t.Fatalf("counts = %v", counts)
	}
	if counts[0] != 2 { // Latin, World
		t.Fatalf("generalization derived %d, want 2", counts[0])
	}
	if counts[1] != 0 { // NYC already known false; no other cities interned
		t.Fatalf("functional derived %d, want 0", counts[1])
	}
	if got := score(t, repo, u, "livesIn NYC"); got != 0 {
		t.Fatalf("explicit falsehood overwritten: %v", got)
	}
}
