package taxonomy

import (
	"sort"
	"strings"

	"podium/internal/profile"
)

// Rule mining. Section 3.1 of the paper notes that inference rules "can be
// pre-specified as in RDF languages or derived via rule mining techniques"
// (citing AMIE). This file implements the practical subset of that idea for
// Podium's property vocabulary: discovering functional property families —
// "<prefix> <variant>" Boolean properties where no user ever holds two
// positive variants — so FunctionalRules can be applied without hand
// curation.

// MinedFunctional is one discovered functional property family.
type MinedFunctional struct {
	// Prefix is the shared label prefix including the separator
	// (e.g. "livesIn ").
	Prefix string
	// Variants are the observed suffixes, sorted.
	Variants []string
	// Support is the number of users holding a positive variant.
	Support int
}

// Rule converts the discovery into an applicable FunctionalRule.
func (m MinedFunctional) Rule() FunctionalRule {
	return FunctionalRule{Prefix: m.Prefix, Variants: m.Variants}
}

// MineFunctionalPrefixes scans the repository for property families that
// behave functionally: labels sharing a "<prefix><sep><variant>" shape whose
// scores are all Boolean and where no user has more than one positive
// variant. minSupport filters families with too few positive holders to
// trust (mined rules are statistical, not axioms — a single counterexample
// user disqualifies a family, mirroring AMIE-style confidence 1.0 mining).
func MineFunctionalPrefixes(repo *profile.Repository, sep string, minSupport int) []MinedFunctional {
	if sep == "" {
		sep = " "
	}
	cat := repo.Catalog()
	// Group property IDs by prefix.
	type family struct {
		ids      []profile.PropertyID
		variants []string
	}
	families := map[string]*family{}
	for id := 0; id < cat.Len(); id++ {
		label := cat.Label(profile.PropertyID(id))
		i := strings.Index(label, sep)
		if i <= 0 || i+len(sep) >= len(label) {
			continue
		}
		prefix := label[:i+len(sep)]
		f := families[prefix]
		if f == nil {
			f = &family{}
			families[prefix] = f
		}
		f.ids = append(f.ids, profile.PropertyID(id))
		f.variants = append(f.variants, label[i+len(sep):])
	}

	var out []MinedFunctional
	prefixes := make([]string, 0, len(families))
	for p := range families {
		prefixes = append(prefixes, p)
	}
	sort.Strings(prefixes)
	for _, prefix := range prefixes {
		f := families[prefix]
		if len(f.ids) < 2 {
			continue // one variant can't evidence mutual exclusion
		}
		support := 0
		functional := true
		for u := 0; u < repo.NumUsers() && functional; u++ {
			positives := 0
			for _, id := range f.ids {
				s, ok := repo.Profile(profile.UserID(u)).Score(id)
				if !ok {
					continue
				}
				if s != 0 && s != 1 {
					functional = false // not a Boolean family
					break
				}
				if s == 1 {
					positives++
				}
			}
			if positives > 1 {
				functional = false
			}
			if positives == 1 {
				support++
			}
		}
		if !functional || support < minSupport {
			continue
		}
		variants := append([]string(nil), f.variants...)
		sort.Strings(variants)
		out = append(out, MinedFunctional{Prefix: prefix, Variants: variants, Support: support})
	}
	return out
}

// MineAndApplyFunctionalRules mines functional families and applies the
// resulting rules, returning the discoveries and total derived scores — the
// zero-curation enrichment path.
func MineAndApplyFunctionalRules(repo *profile.Repository, sep string, minSupport int) ([]MinedFunctional, int, error) {
	mined := MineFunctionalPrefixes(repo, sep, minSupport)
	total := 0
	for _, m := range mined {
		n, err := m.Rule().Apply(repo)
		total += n
		if err != nil {
			return mined, total, err
		}
	}
	return mined, total, nil
}
