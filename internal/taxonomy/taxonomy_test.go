package taxonomy

import (
	"testing"
)

func cuisineTaxonomy(t *testing.T) *Taxonomy {
	t.Helper()
	tax := New()
	tax.MustAddIsA("Mexican", "Latin")
	tax.MustAddIsA("Brazilian", "Latin")
	tax.MustAddIsA("Latin", "World")
	tax.MustAddIsA("Japanese", "Asian")
	tax.MustAddIsA("Asian", "World")
	return tax
}

func TestAddIsARejectsSelfLoop(t *testing.T) {
	tax := New()
	if err := tax.AddIsA("X", "X"); err == nil {
		t.Fatal("self loop accepted")
	}
}

func TestAddIsARejectsCycle(t *testing.T) {
	tax := New()
	tax.MustAddIsA("A", "B")
	tax.MustAddIsA("B", "C")
	if err := tax.AddIsA("C", "A"); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestAddIsADuplicateIgnored(t *testing.T) {
	tax := New()
	tax.MustAddIsA("A", "B")
	if err := tax.AddIsA("A", "B"); err != nil {
		t.Fatal(err)
	}
	if got := tax.Parents("A"); len(got) != 1 {
		t.Fatalf("parents = %v", got)
	}
}

func TestAncestorsTransitive(t *testing.T) {
	tax := cuisineTaxonomy(t)
	got := tax.Ancestors("Mexican")
	want := []string{"Latin", "World"}
	if len(got) != len(want) {
		t.Fatalf("Ancestors(Mexican) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ancestors(Mexican) = %v, want %v", got, want)
		}
	}
	if got := tax.Ancestors("World"); len(got) != 0 {
		t.Fatalf("Ancestors(World) = %v, want empty", got)
	}
	if got := tax.Ancestors("unheard-of"); len(got) != 0 {
		t.Fatalf("Ancestors of unknown = %v, want empty", got)
	}
}

func TestAncestorsDiamond(t *testing.T) {
	// A isA B, A isA C, B isA D, C isA D: D must appear exactly once.
	tax := New()
	tax.MustAddIsA("A", "B")
	tax.MustAddIsA("A", "C")
	tax.MustAddIsA("B", "D")
	tax.MustAddIsA("C", "D")
	got := tax.Ancestors("A")
	if len(got) != 3 { // B, C, D
		t.Fatalf("Ancestors(A) = %v", got)
	}
}

func TestRootsAndLeaves(t *testing.T) {
	tax := cuisineTaxonomy(t)
	roots := tax.Roots()
	if len(roots) != 1 || roots[0] != "World" {
		t.Fatalf("Roots = %v", roots)
	}
	leaves := tax.Leaves()
	want := map[string]bool{"Mexican": true, "Brazilian": true, "Japanese": true}
	if len(leaves) != 3 {
		t.Fatalf("Leaves = %v", leaves)
	}
	for _, l := range leaves {
		if !want[l] {
			t.Fatalf("unexpected leaf %q", l)
		}
	}
}

func TestChildrenParents(t *testing.T) {
	tax := cuisineTaxonomy(t)
	ch := tax.Children("Latin")
	if len(ch) != 2 {
		t.Fatalf("Children(Latin) = %v", ch)
	}
	p := tax.Parents("Mexican")
	if len(p) != 1 || p[0] != "Latin" {
		t.Fatalf("Parents(Mexican) = %v", p)
	}
}

func TestCategoriesSorted(t *testing.T) {
	tax := cuisineTaxonomy(t)
	cats := tax.Categories()
	if len(cats) != 6 {
		t.Fatalf("Categories = %v", cats)
	}
	for i := 1; i < len(cats); i++ {
		if cats[i] <= cats[i-1] {
			t.Fatalf("Categories not sorted: %v", cats)
		}
	}
}
