package taxonomy

import (
	"fmt"
	"sort"
	"strings"

	"podium/internal/profile"
)

// Rule derives new property scores from existing ones on a repository. Rules
// never overwrite a score the user (or a previous rule) already has: explicit
// data always dominates inferred data.
type Rule interface {
	// Apply enriches repo in place and returns the number of derived scores.
	Apply(repo *profile.Repository) (derived int, err error)
}

// Aggregator combines the scores a user has for several child categories
// into a score for their common ancestor.
type Aggregator int

const (
	// AggMean averages the child scores — the right semantics for rating
	// aggregates ("avgRating Latin" is the mean of the Latin cuisines'
	// average ratings).
	AggMean Aggregator = iota
	// AggSumCapped sums the child scores, capped at 1 — the right semantics
	// for frequency-of-visit fractions, which are additive across disjoint
	// child categories.
	AggSumCapped
	// AggMax takes the maximum — the right semantics for Boolean properties
	// ("visited Mexico" implies "visited Latin America").
	AggMax
)

func (a Aggregator) String() string {
	switch a {
	case AggMean:
		return "mean"
	case AggSumCapped:
		return "sum-capped"
	case AggMax:
		return "max"
	}
	return fmt.Sprintf("Aggregator(%d)", int(a))
}

func (a Aggregator) combine(scores []float64) float64 {
	switch a {
	case AggMean:
		var s float64
		for _, x := range scores {
			s += x
		}
		return s / float64(len(scores))
	case AggSumCapped:
		var s float64
		for _, x := range scores {
			s += x
		}
		if s > 1 {
			s = 1
		}
		return s
	case AggMax:
		m := scores[0]
		for _, x := range scores[1:] {
			if x > m {
				m = x
			}
		}
		return m
	}
	panic("taxonomy: unknown aggregator")
}

// GeneralizationRule derives properties for taxonomy ancestors (Example 3.2:
// from "avgRating Mexican" derive "avgRating Latin"). Properties are matched
// by a label prefix: a property "<Prefix><category>" whose category appears
// in the taxonomy contributes its score to "<Prefix><ancestor>" for every
// ancestor, combined with the rule's aggregator across contributing children.
type GeneralizationRule struct {
	Prefix string
	Tax    *Taxonomy
	Agg    Aggregator
}

// Apply implements Rule.
func (g GeneralizationRule) Apply(repo *profile.Repository) (int, error) {
	if g.Tax == nil {
		return 0, fmt.Errorf("taxonomy: GeneralizationRule %q has nil taxonomy", g.Prefix)
	}
	cat := repo.Catalog()
	// Snapshot the original property IDs matching the prefix: the rule must
	// not feed derived properties back into itself (double counting).
	type srcProp struct {
		id       profile.PropertyID
		category string
	}
	var sources []srcProp
	for id := 0; id < cat.Len(); id++ {
		label := cat.Label(profile.PropertyID(id))
		if !strings.HasPrefix(label, g.Prefix) {
			continue
		}
		sources = append(sources, srcProp{profile.PropertyID(id), strings.TrimPrefix(label, g.Prefix)})
	}
	derived := 0
	for u := 0; u < repo.NumUsers(); u++ {
		uid := profile.UserID(u)
		prof := repo.Profile(uid)
		// ancestor -> contributing child scores
		contrib := map[string][]float64{}
		for _, sp := range sources {
			s, ok := prof.Score(sp.id)
			if !ok {
				continue
			}
			for _, anc := range g.Tax.Ancestors(sp.category) {
				contrib[anc] = append(contrib[anc], s)
			}
		}
		ancestors := make([]string, 0, len(contrib))
		for anc := range contrib {
			ancestors = append(ancestors, anc)
		}
		sort.Strings(ancestors)
		for _, anc := range ancestors {
			label := g.Prefix + anc
			id := cat.Intern(label)
			if prof.Has(id) {
				continue // explicit or previously derived data dominates
			}
			if err := repo.SetScoreID(uid, id, g.Agg.combine(contrib[anc])); err != nil {
				return derived, fmt.Errorf("taxonomy: deriving %q: %w", label, err)
			}
			derived++
		}
	}
	return derived, nil
}

// FunctionalRule captures functional properties (Example 3.2: livesIn). All
// properties sharing the prefix are mutually exclusive Boolean variants; when
// a user has one variant with score 1, the falsehood (score 0) of every other
// variant is inferred. Variants are discovered from the catalog unless an
// explicit list is supplied.
type FunctionalRule struct {
	Prefix   string
	Variants []string // optional explicit variant suffixes
}

// Apply implements Rule.
func (f FunctionalRule) Apply(repo *profile.Repository) (int, error) {
	cat := repo.Catalog()
	var ids []profile.PropertyID
	if len(f.Variants) > 0 {
		for _, v := range f.Variants {
			ids = append(ids, cat.Intern(f.Prefix+v))
		}
	} else {
		for id := 0; id < cat.Len(); id++ {
			if strings.HasPrefix(cat.Label(profile.PropertyID(id)), f.Prefix) {
				ids = append(ids, profile.PropertyID(id))
			}
		}
	}
	derived := 0
	for u := 0; u < repo.NumUsers(); u++ {
		uid := profile.UserID(u)
		prof := repo.Profile(uid)
		holds := false
		for _, id := range ids {
			if s, ok := prof.Score(id); ok && s == 1 {
				holds = true
				break
			}
		}
		if !holds {
			continue // open world: without a positive variant nothing follows
		}
		for _, id := range ids {
			if prof.Has(id) {
				continue
			}
			if err := repo.SetScoreID(uid, id, 0); err != nil {
				return derived, fmt.Errorf("taxonomy: functional %q: %w", f.Prefix, err)
			}
			derived++
		}
	}
	return derived, nil
}

// Engine applies an ordered list of rules in one pass each. The rules Podium
// uses are designed to be closed after a single ordered pass (generalization
// propagates to all transitive ancestors at once), so no fixpoint iteration
// is needed; Run reports the per-rule derivation counts for observability.
type Engine struct {
	rules []Rule
}

// NewEngine builds an engine over the given rules, applied in order.
func NewEngine(rules ...Rule) *Engine { return &Engine{rules: rules} }

// Add appends a rule.
func (e *Engine) Add(r Rule) { e.rules = append(e.rules, r) }

// Run enriches the repository with every rule and returns how many scores
// each rule derived.
func (e *Engine) Run(repo *profile.Repository) ([]int, error) {
	counts := make([]int, len(e.rules))
	for i, r := range e.rules {
		n, err := r.Apply(repo)
		counts[i] = n
		if err != nil {
			return counts, fmt.Errorf("taxonomy: rule %d: %w", i, err)
		}
	}
	return counts, nil
}
