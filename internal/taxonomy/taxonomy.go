// Package taxonomy implements the profile-enrichment substrate of Section 3.1
// of the paper: a category taxonomy (e.g. Mexican cuisine isA Latin cuisine)
// together with inference rules that derive new properties from existing
// ones — generalization rules that propagate aggregates up the taxonomy, and
// functional rules that infer the falsehood of mutually exclusive Boolean
// properties (Example 3.2). All remaining absences follow the open-world
// assumption and are left untouched.
package taxonomy

import (
	"fmt"
	"sort"
)

// Taxonomy is a directed acyclic graph of category names related by isA
// edges (child isA parent). Multiple parents are allowed (a cuisine may be
// both "Latin" and "Spicy").
type Taxonomy struct {
	parents  map[string][]string
	children map[string][]string
}

// New returns an empty taxonomy.
func New() *Taxonomy {
	return &Taxonomy{
		parents:  make(map[string][]string),
		children: make(map[string][]string),
	}
}

// AddIsA records that child isA parent. It returns an error when the edge
// would create a cycle (which would make generalization non-terminating) or
// when child == parent. Duplicate edges are ignored.
func (t *Taxonomy) AddIsA(child, parent string) error {
	if child == parent {
		return fmt.Errorf("taxonomy: %q cannot be its own parent", child)
	}
	for _, p := range t.parents[child] {
		if p == parent {
			return nil
		}
	}
	if t.reaches(parent, child) {
		return fmt.Errorf("taxonomy: edge %q isA %q would create a cycle", child, parent)
	}
	t.parents[child] = append(t.parents[child], parent)
	t.children[parent] = append(t.children[parent], child)
	return nil
}

// MustAddIsA is AddIsA for static taxonomy construction.
func (t *Taxonomy) MustAddIsA(child, parent string) {
	if err := t.AddIsA(child, parent); err != nil {
		panic(err)
	}
}

// reaches reports whether dst is reachable from src via isA edges.
func (t *Taxonomy) reaches(src, dst string) bool {
	if src == dst {
		return true
	}
	seen := map[string]bool{src: true}
	stack := []string{src}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range t.parents[cur] {
			if p == dst {
				return true
			}
			if !seen[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
	}
	return false
}

// Parents returns the direct parents of cat in insertion order.
func (t *Taxonomy) Parents(cat string) []string {
	return append([]string(nil), t.parents[cat]...)
}

// Children returns the direct children of cat in insertion order.
func (t *Taxonomy) Children(cat string) []string {
	return append([]string(nil), t.children[cat]...)
}

// Ancestors returns every category transitively reachable from cat via isA
// edges, deduplicated and sorted for determinism. cat itself is excluded.
func (t *Taxonomy) Ancestors(cat string) []string {
	seen := map[string]bool{}
	var visit func(string)
	visit = func(c string) {
		for _, p := range t.parents[c] {
			if !seen[p] {
				seen[p] = true
				visit(p)
			}
		}
	}
	visit(cat)
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Categories returns every category mentioned in the taxonomy, sorted.
func (t *Taxonomy) Categories() []string {
	seen := map[string]bool{}
	for c, ps := range t.parents {
		seen[c] = true
		for _, p := range ps {
			seen[p] = true
		}
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Roots returns the categories with no parents, sorted.
func (t *Taxonomy) Roots() []string {
	var out []string
	for _, c := range t.Categories() {
		if len(t.parents[c]) == 0 {
			out = append(out, c)
		}
	}
	return out
}

// Leaves returns the categories with no children, sorted.
func (t *Taxonomy) Leaves() []string {
	var out []string
	for _, c := range t.Categories() {
		if len(t.children[c]) == 0 {
			out = append(out, c)
		}
	}
	return out
}
