package taxonomy

import (
	"testing"

	"podium/internal/profile"
)

func TestMineFunctionalPrefixesPaperExample(t *testing.T) {
	// In Table 2, livesIn and ageGroup are Boolean and mutually exclusive
	// per user; avgRating/visitFreq are numeric and must not be mined.
	repo := profile.PaperExample()
	mined := MineFunctionalPrefixes(repo, " ", 1)
	byPrefix := map[string]MinedFunctional{}
	for _, m := range mined {
		byPrefix[m.Prefix] = m
	}
	lives, ok := byPrefix["livesIn "]
	if !ok {
		t.Fatalf("livesIn not mined; got %+v", mined)
	}
	if len(lives.Variants) != 4 || lives.Support != 5 {
		t.Fatalf("livesIn mined as %+v", lives)
	}
	if _, ok := byPrefix["avgRating "]; ok {
		t.Fatal("numeric avgRating family mined as functional")
	}
	if _, ok := byPrefix["visitFreq "]; ok {
		t.Fatal("numeric visitFreq family mined as functional")
	}
	// ageGroup has a single variant in the fixture: not mineable evidence.
	if _, ok := byPrefix["ageGroup "]; ok {
		t.Fatal("single-variant family mined")
	}
}

func TestMineFunctionalRejectsCounterexample(t *testing.T) {
	repo := profile.NewRepository()
	a := repo.AddUser("A")
	repo.MustSetScore(a, "speaks English", 1)
	repo.MustSetScore(a, "speaks French", 1) // two positives: not functional
	b := repo.AddUser("B")
	repo.MustSetScore(b, "speaks German", 1)
	if mined := MineFunctionalPrefixes(repo, " ", 1); len(mined) != 0 {
		t.Fatalf("multi-valued family mined: %+v", mined)
	}
}

func TestMineFunctionalMinSupport(t *testing.T) {
	repo := profile.NewRepository()
	a := repo.AddUser("A")
	repo.MustSetScore(a, "tier gold", 1)
	repo.MustSetScore(a, "tier silver", 0)
	if mined := MineFunctionalPrefixes(repo, " ", 2); len(mined) != 0 {
		t.Fatalf("support-1 family passed minSupport=2: %+v", mined)
	}
	if mined := MineFunctionalPrefixes(repo, " ", 1); len(mined) != 1 {
		t.Fatalf("family not mined at minSupport=1: %+v", mined)
	}
}

func TestMineAndApplyFunctionalRules(t *testing.T) {
	repo := profile.PaperExample()
	mined, derived, err := MineAndApplyFunctionalRules(repo, " ", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(mined) == 0 {
		t.Fatal("nothing mined")
	}
	// livesIn inference: every user gains falsehoods for the other cities
	// (15 total, as in the explicit-rule test).
	if derived != 15 {
		t.Fatalf("derived %d scores, want 15", derived)
	}
	id, _ := repo.Catalog().Lookup("livesIn NYC")
	if s, ok := repo.Profile(0).Score(id); !ok || s != 0 {
		t.Fatalf("Alice's livesIn NYC = %v,%v", s, ok)
	}
}

func TestMinedRuleRoundTrip(t *testing.T) {
	m := MinedFunctional{Prefix: "livesIn ", Variants: []string{"NYC", "Tokyo"}}
	r := m.Rule()
	if r.Prefix != "livesIn " || len(r.Variants) != 2 {
		t.Fatalf("rule = %+v", r)
	}
}
