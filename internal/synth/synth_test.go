package synth

import (
	"strings"
	"testing"

	"podium/internal/groups"
	"podium/internal/opinions"
	"podium/internal/profile"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := TripAdvisorLike(100)
	a := Generate(cfg)
	b := Generate(cfg)
	if a.Repo.NumUsers() != b.Repo.NumUsers() || a.Repo.NumProperties() != b.Repo.NumProperties() {
		t.Fatal("same seed produced different repository shapes")
	}
	if a.Store.NumReviews() != b.Store.NumReviews() {
		t.Fatal("same seed produced different review counts")
	}
	for u := 0; u < a.Repo.NumUsers(); u++ {
		pa, pb := a.Repo.Profile(profile.UserID(u)), b.Repo.Profile(profile.UserID(u))
		if pa.Len() != pb.Len() {
			t.Fatalf("user %d profile size differs", u)
		}
	}
}

func TestGenerateSeedChangesData(t *testing.T) {
	cfg := TripAdvisorLike(80)
	a := Generate(cfg)
	cfg.Seed = 999
	b := Generate(cfg)
	if a.Store.NumReviews() == b.Store.NumReviews() && a.Repo.NumProperties() == b.Repo.NumProperties() {
		t.Log("different seeds produced same coarse shape (possible); checking profiles")
		same := true
		for u := 0; u < 10; u++ {
			if a.Repo.Profile(profile.UserID(u)).Len() != b.Repo.Profile(profile.UserID(u)).Len() {
				same = false
			}
		}
		if same {
			t.Fatal("different seeds produced identical data")
		}
	}
}

func TestTripAdvisorLikeShape(t *testing.T) {
	ds := Generate(TripAdvisorLike(150))
	repo := ds.Repo
	if repo.NumUsers() != 150 {
		t.Fatalf("users = %d", repo.NumUsers())
	}
	// High dimensionality: the paper's corpus has hundreds of properties.
	if repo.NumProperties() < 100 {
		t.Fatalf("properties = %d, want >= 100", repo.NumProperties())
	}
	// Taxonomy enrichment must have produced family-level aggregates.
	if _, ok := repo.Catalog().Lookup("avgRating Latin"); !ok {
		t.Fatal("no derived avgRating Latin property")
	}
	if _, ok := repo.Catalog().Lookup("avgRating Food"); !ok {
		t.Fatal("no derived root aggregate")
	}
	// Functional inference: some user must carry a false livesIn.
	foundFalse := false
	for u := 0; u < repo.NumUsers() && !foundFalse; u++ {
		repo.Profile(profile.UserID(u)).Each(func(id profile.PropertyID, s float64) {
			if s == 0 && strings.HasPrefix(repo.Catalog().Label(id), "livesIn ") {
				foundFalse = true
			}
		})
	}
	if !foundFalse {
		t.Fatal("functional city rule produced no inferred falsehoods")
	}
	// Ground truth exists.
	if ds.Store.NumReviews() < repo.NumUsers() {
		t.Fatalf("reviews = %d, want at least one per user", ds.Store.NumReviews())
	}
}

func TestYelpLikeSimplerSemantics(t *testing.T) {
	ta := Generate(TripAdvisorLike(150))
	yl := Generate(YelpLike(150))
	// "the Yelp dataset has more users, but less groups due to its simpler
	// semantics" — at equal user count it must have fewer properties.
	if yl.Repo.NumProperties() >= ta.Repo.NumProperties() {
		t.Fatalf("yelp-like properties %d not fewer than tripadvisor-like %d",
			yl.Repo.NumProperties(), ta.Repo.NumProperties())
	}
	// No taxonomy enrichment.
	if _, ok := yl.Repo.Catalog().Lookup("avgRating Latin"); ok {
		t.Fatal("yelp-like carries derived taxonomy aggregates")
	}
	// Usefulness votes present on at least one review.
	hasAny := false
	for d := 0; d < yl.Store.NumDestinations(); d++ {
		for _, r := range yl.Store.Reviews(opinions.DestID(d)) {
			if r.Useful > 0 {
				hasAny = true
			}
		}
	}
	if !hasAny {
		t.Fatal("yelp-like reviews carry no usefulness votes")
	}
}

func TestScoresWithinRange(t *testing.T) {
	ds := Generate(TripAdvisorLike(100))
	repo := ds.Repo
	for u := 0; u < repo.NumUsers(); u++ {
		repo.Profile(profile.UserID(u)).Each(func(id profile.PropertyID, s float64) {
			if s < 0 || s > 1 {
				t.Fatalf("user %d property %q score %v outside [0,1]",
					u, repo.Catalog().Label(id), s)
			}
		})
	}
}

func TestRatingsWithinScale(t *testing.T) {
	ds := Generate(YelpLike(100))
	for d := 0; d < ds.Store.NumDestinations(); d++ {
		for _, r := range ds.Store.Reviews(opinions.DestID(d)) {
			if r.Rating < 1 || r.Rating > ds.Store.MaxRating() {
				t.Fatalf("rating %d outside scale", r.Rating)
			}
		}
	}
}

func TestGroupSizeSkew(t *testing.T) {
	// Zipfian cities/categories must yield skewed group sizes — the trait
	// driving the paper's coverage-vs-distance findings.
	ds := Generate(TripAdvisorLike(200))
	ix := groups.Build(ds.Repo, groups.Config{K: 3})
	if ix.NumGroups() < 200 {
		t.Fatalf("groups = %d, want high-dimensional grouping", ix.NumGroups())
	}
	sizes := make([]int, 0, ix.NumGroups())
	for _, g := range ix.Groups() {
		sizes = append(sizes, g.Size())
	}
	max, sum := 0, 0
	for _, s := range sizes {
		if s > max {
			max = s
		}
		sum += s
	}
	mean := float64(sum) / float64(len(sizes))
	if float64(max) < 5*mean {
		t.Fatalf("max group size %d vs mean %.1f — insufficient skew", max, mean)
	}
}

func TestGroupOverlap(t *testing.T) {
	// "each user belongs to many groups": average membership well above 1.
	ds := Generate(TripAdvisorLike(150))
	ix := groups.Build(ds.Repo, groups.Config{K: 3})
	total := 0
	for u := 0; u < ds.Repo.NumUsers(); u++ {
		total += len(ix.UserGroups(profile.UserID(u)))
	}
	avg := float64(total) / float64(ds.Repo.NumUsers())
	if avg < 10 {
		t.Fatalf("average groups per user = %.1f, want >= 10", avg)
	}
}

func TestCuisineTaxonomyShape(t *testing.T) {
	tax := CuisineTaxonomy()
	if got := len(tax.Leaves()); got != 26 {
		t.Fatalf("leaves = %d, want 26", got)
	}
	roots := tax.Roots()
	if len(roots) != 1 || roots[0] != "Food" {
		t.Fatalf("roots = %v", roots)
	}
	anc := tax.Ancestors("Mexican")
	if len(anc) != 2 || anc[0] != "Food" || anc[1] != "Latin" {
		t.Fatalf("Ancestors(Mexican) = %v", anc)
	}
}

// Paper-scale validation: at the full 4,475 users the corpus lands in the
// same order of magnitude as the paper's reported statistics — ~50K
// restaurants, thousands of groups (paper: 11,749), hundreds of properties
// in the largest profiles (paper: up to 665).
func TestPaperScaleCorpusStatistics(t *testing.T) {
	if testing.Short() {
		t.Skip("generates the full paper-scale corpus (~4s)")
	}
	ds := Generate(TripAdvisorLike(0))
	if ds.Repo.NumUsers() != 4475 {
		t.Fatalf("users = %d", ds.Repo.NumUsers())
	}
	if d := ds.Store.NumDestinations(); d < 45000 || d > 55000 {
		t.Fatalf("destinations = %d, want ≈50K", d)
	}
	ix := groups.Build(ds.Repo, groups.Config{K: 3, Parallelism: 4})
	if g := ix.NumGroups(); g < 5000 || g > 20000 {
		t.Fatalf("groups = %d, want the paper's order of magnitude (11,749)", g)
	}
	if m := ds.Repo.MaxProfileSize(); m < 200 {
		t.Fatalf("max profile = %d, want hundreds of properties", m)
	}
}

func TestPaperScaleDefaultsPreserved(t *testing.T) {
	ta := TripAdvisorLike(0)
	if ta.Users != 4475 {
		t.Fatalf("TripAdvisor default users = %d, want 4475", ta.Users)
	}
	if ta.Destinations != 4475*11 {
		t.Fatalf("TripAdvisor default destinations = %d", ta.Destinations)
	}
	yl := YelpLike(0)
	if yl.Users != 60000 {
		t.Fatalf("Yelp default users = %d, want 60000", yl.Users)
	}
}
