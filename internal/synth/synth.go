// Package synth generates the synthetic stand-ins for the paper's two
// proprietary datasets (Section 8.1): a TripAdvisor-like corpus — rich
// semantics, taxonomy-enriched high-dimensional profiles — and a Yelp-like
// corpus — more users, simpler semantics, usefulness votes on reviews. The
// generators reproduce the statistical traits the paper's findings depend
// on: Zipf-skewed group sizes, heavy group overlap, latent user communities
// (so clustering has structure to find), score ranges rather than
// categories, and per-destination ground-truth reviews with topics and
// sentiment for the opinion-procurement experiments. See DESIGN.md §3 for
// the substitution rationale.
package synth

import (
	"fmt"
	"math"
	"sort"

	"podium/internal/opinions"
	"podium/internal/profile"
	"podium/internal/stats"
	"podium/internal/taxonomy"
)

// sortedKeys returns m's keys in ascending order. Profile scores must be
// written in a stable order: the catalog assigns property IDs on first
// encounter, so map-order iteration would shuffle IDs (and with them group
// IDs and greedy tie-breaks) between runs of the same seed.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Dataset bundles a generated user repository with its ground-truth reviews.
type Dataset struct {
	Name  string
	Repo  *profile.Repository
	Store *opinions.Store
}

// Config controls generation. Zero values select sensible defaults via
// withDefaults; the TripAdvisorLike and YelpLike presets mirror the paper's
// two corpora.
type Config struct {
	Name       string
	Seed       int64
	Users      int
	Cities     int
	AgeGroups  int
	Archetypes int // latent user communities
	// Destinations is the number of reviewable businesses.
	Destinations int
	// MeanReviewsPerUser controls activity volume.
	MeanReviewsPerUser float64
	// TopicVocab is the global topic vocabulary size; TopicsPerDest of them
	// are prevalent per destination.
	TopicVocab    int
	TopicsPerDest int
	MaxRating     int
	// PerCityCategoryProps derives additional visitFreq properties per
	// (category, city) pair — the dimensionality amplifier that pushes
	// TripAdvisor-like profiles into the hundreds of properties.
	PerCityCategoryProps bool
	// EnrichTaxonomy applies the generalization rules of Section 3.1,
	// deriving parent-category aggregates (Mexican → Latin → Food).
	EnrichTaxonomy bool
	// InferFunctionalCity applies the functional rule to livesIn,
	// materializing the falsehood of all other cities (Example 3.2).
	InferFunctionalCity bool
	// UsefulnessVotes attaches usefulness votes to reviews (Yelp only).
	UsefulnessVotes bool
	// ProfilesOnly skips everything that exists solely for the opinion
	// experiments — destination topics, review records, mentions, usefulness
	// votes — while keeping the visit/rating draws that shape profiles. The
	// scale tiers use it to stream millions of users through the columnar
	// builder without materializing a review store. The rng stream differs
	// from the full generator's, so ProfilesOnly defines its own datasets
	// rather than a subset of existing ones.
	ProfilesOnly bool
}

func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = "synthetic"
	}
	if c.Users <= 0 {
		c.Users = 500
	}
	if c.Cities <= 0 {
		c.Cities = 20
	}
	if c.AgeGroups <= 0 {
		c.AgeGroups = 5
	}
	if c.Archetypes <= 0 {
		c.Archetypes = 8
	}
	if c.Destinations <= 0 {
		c.Destinations = c.Users * 3
	}
	if c.MeanReviewsPerUser <= 0 {
		c.MeanReviewsPerUser = 15
	}
	if c.TopicVocab <= 0 {
		c.TopicVocab = 40
	}
	if c.TopicsPerDest <= 0 {
		c.TopicsPerDest = 6
	}
	if c.MaxRating <= 0 {
		c.MaxRating = 5
	}
	return c
}

// TripAdvisorLike mirrors the paper's TripAdvisor sample: 4,475 users
// reviewing ~50K restaurants with rich, taxonomy-enriched, high-dimensional
// profiles. users scales the corpus down for tests and benches (pass 0 for
// the paper-scale default).
func TripAdvisorLike(users int) Config {
	if users <= 0 {
		users = 4475
	}
	return Config{
		Name:                 "tripadvisor-like",
		Seed:                 1701,
		Users:                users,
		Cities:               40,
		AgeGroups:            5,
		Archetypes:           10,
		Destinations:         users * 11, // ≈ 50K at paper scale
		MeanReviewsPerUser:   22,
		TopicVocab:           60,
		TopicsPerDest:        7,
		MaxRating:            5,
		PerCityCategoryProps: true,
		EnrichTaxonomy:       true,
		InferFunctionalCity:  true,
	}
}

// YelpLike mirrors the paper's Yelp Open Dataset subset: more users, fewer
// and semantically simpler properties (no taxonomy enrichment, no
// per-city aggregates), and usefulness votes. At paper scale: 60K users.
func YelpLike(users int) Config {
	if users <= 0 {
		users = 60000
	}
	return Config{
		Name:               "yelp-like",
		Seed:               9091,
		Users:              users,
		Cities:             12,
		AgeGroups:          0, // Yelp has no age data
		Archetypes:         8,
		Destinations:       users, // ≈ 52K at paper scale
		MeanReviewsPerUser: 28,
		TopicVocab:         30,
		TopicsPerDest:      5,
		MaxRating:          5,
		UsefulnessVotes:    true,
	}
}

// ScaleLike is the lean preset behind the scale bench tiers: profiles-only
// generation (no review store) with per-city aggregates for realistic
// dimensionality, streamed through the columnar builder so memory stays
// bounded by the final arrays. Pass the tier's user count (0 selects 100K).
func ScaleLike(users int) Config {
	if users <= 0 {
		users = 100000
	}
	dests := users / 4
	if dests < 2000 {
		dests = 2000
	}
	return Config{
		Name:                 "scale",
		Seed:                 4242,
		Users:                users,
		Cities:               40,
		AgeGroups:            5,
		Archetypes:           12,
		Destinations:         dests,
		MeanReviewsPerUser:   10,
		TopicVocab:           30,
		TopicsPerDest:        5,
		MaxRating:            5,
		PerCityCategoryProps: true,
		ProfilesOnly:         true,
	}
}

// CuisineTaxonomy is the static category tree used by the generators and by
// the taxonomy enrichment step: 26 leaf cuisines under 6 mid-level families
// under the root "Food".
func CuisineTaxonomy() *taxonomy.Taxonomy {
	tax := taxonomy.New()
	families := map[string][]string{
		"Latin":         {"Mexican", "Brazilian", "Peruvian", "Argentinian"},
		"Asian":         {"Japanese", "Chinese", "Thai", "Korean", "Vietnamese", "Indian"},
		"European":      {"French", "Italian", "Greek", "Spanish", "German"},
		"American":      {"Burgers", "BBQ", "Steakhouse", "Diner"},
		"MiddleEastern": {"Lebanese", "Turkish", "Israeli"},
		"Casual":        {"CheapEats", "FastFood", "Cafe", "Bakery"},
	}
	// Deterministic edge order.
	for _, fam := range cuisineFamilies {
		tax.MustAddIsA(fam, "Food")
		for _, leaf := range families[fam] {
			tax.MustAddIsA(leaf, fam)
		}
	}
	return tax
}

type destination struct {
	category string // leaf cuisine
	catIdx   int    // index of category in tax.Leaves()
	city     int
	quality  float64 // base quality on the rating scale
	topics   []string
}

// cuisineFamilies is the literal family order shared by the taxonomy builder
// and the archetype disposition draws; indexing by position (rather than map
// lookups) keeps every rng draw and every derived value order-deterministic.
var cuisineFamilies = []string{"Latin", "Asian", "European", "American", "MiddleEastern", "Casual"}

// Generate builds a dataset from the configuration. Generation is fully
// deterministic in cfg.Seed.
func Generate(cfg Config) *Dataset {
	cfg = cfg.withDefaults()
	rng := stats.NewRand(cfg.Seed)
	tax := CuisineTaxonomy()
	leaves := tax.Leaves()

	// Zipf popularity for cities and categories: the skew behind the
	// paper's observation that a few prevalent categories are shared by
	// many users.
	cityWeights := stats.ZipfWeights(cfg.Cities, 1.0)
	catWeights := stats.ZipfWeights(len(leaves), 0.9)

	// Global topic vocabulary.
	topics := make([]string, cfg.TopicVocab)
	for i := range topics {
		topics[i] = fmt.Sprintf("topic-%02d", i)
	}

	// Destinations. Pools are indexed by leaf position, never keyed by
	// string: map iteration order would otherwise shuffle the within-category
	// samplers (and with them every review draw) between runs of one seed.
	dests := make([]destination, cfg.Destinations)
	destByCat := make([][]int, len(leaves))
	for d := range dests {
		ci := stats.WeightedIndex(rng, catWeights)
		city := stats.WeightedIndex(rng, cityWeights)
		var dt []string
		if !cfg.ProfilesOnly {
			k := cfg.TopicsPerDest
			if k > len(topics) {
				k = len(topics)
			}
			for _, ti := range stats.SampleWithoutReplacement(rng, len(topics), k) {
				dt = append(dt, topics[ti])
			}
		}
		dests[d] = destination{
			category: leaves[ci],
			catIdx:   ci,
			city:     city,
			quality:  1.8 + 2.8*rng.Float64(),
			topics:   dt,
		}
		destByCat[ci] = append(destByCat[ci], d)
	}
	// Zipf popularity *within* each category: a handful of destinations
	// attract most reviews, giving the opinion experiments well-reviewed
	// destinations to evaluate (the paper's 50 destinations average 90
	// reviews each). Samplers precompute prefix sums, so the million-draw
	// review loop pays O(log pool) per pick instead of a full scan.
	destSampler := make([]*stats.WeightedSampler, len(leaves))
	for ci, pool := range destByCat {
		if len(pool) > 0 {
			destSampler[ci] = stats.NewWeightedSampler(stats.ZipfWeights(len(pool), 1.1))
		}
	}

	// Archetypes: peaky affinity over leaf categories plus a per-family
	// rating disposition, so users of the same community both visit and
	// judge similarly — the latent structure clustering should recover.
	type archetype struct {
		affinity    []float64 // over leaves
		disposition []float64 // over cuisineFamilies
		homeCity    int
	}
	arch := make([]archetype, cfg.Archetypes)
	for a := range arch {
		aff := make([]float64, len(leaves))
		for i := range aff {
			e := rng.ExpFloat64()
			aff[i] = e * e // peaky
		}
		disp := make([]float64, len(cuisineFamilies))
		for fi := range cuisineFamilies {
			disp[fi] = (rng.Float64()*2 - 1) * 1.2
		}
		arch[a] = archetype{affinity: aff, disposition: disp, homeCity: stats.WeightedIndex(rng, cityWeights)}
	}
	famIdx := map[string]int{}
	for fi, fam := range cuisineFamilies {
		famIdx[fam] = fi
	}
	famOfLeaf := make([]int, len(leaves))
	for li, leaf := range leaves {
		famOfLeaf[li] = famIdx[tax.Parents(leaf)[0]]
	}

	// Profiles stream through the columnar builder: per-user rows are
	// appended (and sealed) in order, so memory is bounded by the final
	// arrays rather than per-user maps — the difference between 1M users
	// fitting comfortably and not.
	b := profile.NewBuilder()
	addScore := func(label string, s float64) {
		if err := b.AddLabeled(label, s); err != nil {
			panic(err)
		}
	}
	store := opinions.NewStore(cfg.MaxRating)
	if !cfg.ProfilesOnly {
		for d := range dests {
			id := store.AddDestination(fmt.Sprintf("dest-%05d", d), dests[d].topics)
			store.SetDestCategory(id, dests[d].category)
		}
	}

	ageLabels := []string{"18-29", "30-39", "40-49", "50-64", "65+"}

	for u := 0; u < cfg.Users; u++ {
		uid := b.AddUser(fmt.Sprintf("user-%05d", u))
		a := arch[rng.Intn(cfg.Archetypes)]
		// Home city: usually the archetype's (communities cluster
		// geographically), sometimes an independent draw.
		city := a.homeCity
		if rng.Float64() < 0.35 {
			city = stats.WeightedIndex(rng, cityWeights)
		}
		addScore("livesIn "+cityName(city), 1)
		if cfg.AgeGroups > 0 {
			g := rng.Intn(cfg.AgeGroups)
			if g >= len(ageLabels) {
				g = len(ageLabels) - 1
			}
			addScore("ageGroup "+ageLabels[g], 1)
		}

		// Activity volume: lognormal-ish around the configured mean.
		nReviews := int(cfg.MeanReviewsPerUser * math.Exp(0.6*rng.NormFloat64()) / math.Exp(0.18))
		if nReviews < 1 {
			nReviews = 1
		}

		// Per-category accumulators for profile aggregates.
		visits := map[string]int{}
		ratingSum := map[string]float64{}
		cityVisits := map[string]int{}        // "<cat>@<city>" when enabled
		cityRatingSum := map[string]float64{} // parallel rating mass per key
		var totalVisits int
		var totalRating float64

		reviewed := map[int]bool{}
		for r := 0; r < nReviews; r++ {
			// Pick a destination: archetype-driven category, Zipf fallback.
			var d int
			if rng.Float64() < 0.75 {
				ci := stats.WeightedIndex(rng, a.affinity)
				pool := destByCat[ci]
				if len(pool) == 0 {
					d = rng.Intn(len(dests))
				} else {
					d = pool[destSampler[ci].Sample(rng)]
				}
			} else {
				d = rng.Intn(len(dests))
			}
			if reviewed[d] {
				continue // one review per (user, destination)
			}
			reviewed[d] = true
			dest := dests[d]
			rating := clampRating(int(math.Round(dest.quality+a.disposition[famOfLeaf[dest.catIdx]]+0.8*rng.NormFloat64())), cfg.MaxRating)

			if !cfg.ProfilesOnly {
				// Topic mentions: 1-3 of the destination's prevalent topics,
				// sentiment correlated with the rating.
				nTop := 1 + rng.Intn(3)
				if nTop > len(dest.topics) {
					nTop = len(dest.topics)
				}
				var mentions []opinions.TopicMention
				for _, ti := range stats.SampleWithoutReplacement(rng, len(dest.topics), nTop) {
					pPos := 1 / (1 + math.Exp(-(float64(rating) - float64(cfg.MaxRating)/2 - 0.5)))
					mentions = append(mentions, opinions.TopicMention{
						Topic:    dest.topics[ti],
						Positive: rng.Float64() < pPos,
					})
				}
				useful := 0
				if cfg.UsefulnessVotes {
					// Mainstream destinations attract more engagement.
					useful = int(math.Exp(rng.NormFloat64())*catWeights[dest.catIdx]*6) % 50
				}
				store.MustAddReview(opinions.Review{
					User:   uid,
					Dest:   opinions.DestID(d),
					Rating: rating,
					Topics: mentions,
					Useful: useful,
				})
			}

			visits[dest.category]++
			ratingSum[dest.category] += float64(rating)
			totalVisits++
			totalRating += float64(rating)
			if cfg.PerCityCategoryProps {
				key := dest.category + "@" + cityName(dest.city)
				cityVisits[key]++
				cityRatingSum[key] += float64(rating)
			}
		}

		if totalVisits == 0 {
			continue
		}
		avgOverall := totalRating / float64(totalVisits)
		for _, cat := range sortedKeys(visits) {
			n := visits[cat]
			avgCat := ratingSum[cat] / float64(n)
			// Average Rating, normalized by the user's overall average
			// (Section 8.1): equal-to-own-average maps to 0.5.
			addScore("avgRating "+cat, stats.Clamp(avgCat/(2*avgOverall), 0, 1))
			// Visit Frequency: fraction of the user's visits in the category.
			addScore("visitFreq "+cat, float64(n)/float64(totalVisits))
			// Enthusiasm Level: fraction of rating points given to the
			// category.
			addScore("enthusiasm "+cat, ratingSum[cat]/totalRating)
		}
		// Per-(category, city) aggregates are the dimensionality amplifier:
		// TripAdvisor derives many features per destination, which is what
		// pushes the paper's corpus to thousands of groups.
		for _, key := range sortedKeys(cityVisits) {
			n := cityVisits[key]
			addScore("visitFreq "+key, float64(n)/float64(totalVisits))
			addScore("avgRating "+key,
				stats.Clamp(cityRatingSum[key]/float64(n)/(2*avgOverall), 0, 1))
			addScore("enthusiasm "+key, cityRatingSum[key]/totalRating)
		}
	}
	repo := b.Build()

	// Enrichment (Section 3.1).
	var rules []taxonomy.Rule
	if cfg.EnrichTaxonomy {
		rules = append(rules,
			taxonomy.GeneralizationRule{Prefix: "avgRating ", Tax: tax, Agg: taxonomy.AggMean},
			taxonomy.GeneralizationRule{Prefix: "visitFreq ", Tax: tax, Agg: taxonomy.AggSumCapped},
			taxonomy.GeneralizationRule{Prefix: "enthusiasm ", Tax: tax, Agg: taxonomy.AggSumCapped},
		)
	}
	if cfg.InferFunctionalCity {
		rules = append(rules, taxonomy.FunctionalRule{Prefix: "livesIn "})
	}
	if len(rules) > 0 {
		if _, err := taxonomy.NewEngine(rules...).Run(repo); err != nil {
			panic(err) // static rules over generated data cannot fail
		}
		// Enrichment wrote through the copy-on-write overlay; fold it back
		// into flat columns so downstream consumers get the fast path.
		repo.Compact()
	}

	return &Dataset{Name: cfg.Name, Repo: repo, Store: store}
}

func cityName(i int) string { return fmt.Sprintf("city-%02d", i) }

func clampRating(r, max int) int {
	if r < 1 {
		return 1
	}
	if r > max {
		return max
	}
	return r
}
