package synth

import (
	"bytes"
	"testing"

	"podium/internal/codec"
	"podium/internal/profile"
)

// Identical seeds must produce byte-identical datasets: the columnar image is
// a faithful dump of catalog order, row contents and user names, so encoding
// two runs of the same config and comparing bytes catches any residual
// map-iteration nondeterminism in Generate (the historical destByCat/famOf
// hazard) at every scale, not just shape-level equality.
func TestGenerateByteIdentical(t *testing.T) {
	for _, cfg := range []Config{TripAdvisorLike(150), YelpLike(200), ScaleLike(3000)} {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			var first, second bytes.Buffer
			if err := codec.WriteRepositoryImage(&first, Generate(cfg).Repo); err != nil {
				t.Fatal(err)
			}
			if err := codec.WriteRepositoryImage(&second, Generate(cfg).Repo); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first.Bytes(), second.Bytes()) {
				t.Fatal("same seed produced different repository bytes")
			}
		})
	}
}

// ProfilesOnly generation must still populate full profiles — the scale
// tiers depend on realistic dimensionality even without a review store.
func TestScaleLikeProfilesOnly(t *testing.T) {
	ds := Generate(ScaleLike(500))
	if ds.Store.NumReviews() != 0 {
		t.Fatalf("ProfilesOnly generated %d reviews", ds.Store.NumReviews())
	}
	if ds.Repo.NumUsers() != 500 {
		t.Fatalf("got %d users", ds.Repo.NumUsers())
	}
	if ds.Repo.NumProperties() < 100 {
		t.Fatalf("suspiciously few properties: %d", ds.Repo.NumProperties())
	}
	var links int
	for u := 0; u < ds.Repo.NumUsers(); u++ {
		links += ds.Repo.Profile(profile.UserID(u)).Len()
	}
	if avg := float64(links) / 500; avg < 5 {
		t.Fatalf("average profile size %.1f — review draws not reaching profiles", avg)
	}
}
