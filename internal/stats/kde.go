package stats

import (
	"math"
	"sort"
)

// KDE is a one-dimensional Gaussian kernel density estimator. The bucketing
// package uses it to split a property's score range at density valleys
// (one of the 1-d interval-splitting methods named in Section 3.2 of the
// paper).
type KDE struct {
	xs        []float64 // sorted sample
	bandwidth float64
}

// NewKDE builds an estimator over xs with the given bandwidth. A bandwidth
// of 0 (or less) selects Silverman's rule of thumb. Panics on an empty
// sample.
func NewKDE(xs []float64, bandwidth float64) *KDE {
	if len(xs) == 0 {
		panic("stats: NewKDE of empty sample")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if bandwidth <= 0 {
		bandwidth = SilvermanBandwidth(sorted)
	}
	return &KDE{xs: sorted, bandwidth: bandwidth}
}

// SilvermanBandwidth returns Silverman's rule-of-thumb bandwidth
// 0.9 · min(σ, IQR/1.34) · n^(-1/5), with a small floor so that constant
// samples (all scores identical — common for Boolean properties) still
// produce a usable estimator.
func SilvermanBandwidth(xs []float64) float64 {
	n := float64(len(xs))
	sigma := StdDev(xs)
	iqr := IQR(xs) / 1.34
	spread := sigma
	if iqr > 0 && iqr < spread || spread == 0 {
		if iqr > 0 {
			spread = iqr
		}
	}
	bw := 0.9 * spread * math.Pow(n, -0.2)
	const floor = 1e-3
	if bw < floor {
		bw = floor
	}
	return bw
}

// Bandwidth reports the bandwidth in use.
func (k *KDE) Bandwidth() float64 { return k.bandwidth }

// Density returns the estimated density at x.
func (k *KDE) Density(x float64) float64 {
	// Only sample points within 5 bandwidths contribute meaningfully; the
	// sample is sorted, so restrict to that window.
	lo := sort.SearchFloat64s(k.xs, x-5*k.bandwidth)
	hi := sort.SearchFloat64s(k.xs, x+5*k.bandwidth)
	var sum float64
	inv := 1 / k.bandwidth
	for _, xi := range k.xs[lo:hi] {
		u := (x - xi) * inv
		sum += math.Exp(-0.5 * u * u)
	}
	norm := 1 / (float64(len(k.xs)) * k.bandwidth * math.Sqrt(2*math.Pi))
	return sum * norm
}

// Grid evaluates the density at n equally spaced points covering [lo, hi]
// and returns the points and their densities. Panics if n < 2 or hi <= lo.
func (k *KDE) Grid(lo, hi float64, n int) (points, density []float64) {
	if n < 2 || !(hi > lo) {
		panic("stats: KDE.Grid requires n >= 2 and hi > lo")
	}
	points = make([]float64, n)
	density = make([]float64, n)
	for i := 0; i < n; i++ {
		points[i] = lo + (hi-lo)*float64(i)/float64(n-1)
		density[i] = k.Density(points[i])
	}
	return points, density
}

// Valleys returns the x-coordinates of local minima of the density evaluated
// on an n-point grid over [lo, hi] — the natural cut points between modes.
// Grid endpoints never count as valleys.
func (k *KDE) Valleys(lo, hi float64, n int) []float64 {
	points, density := k.Grid(lo, hi, n)
	var valleys []float64
	for i := 1; i < n-1; i++ {
		// A strict dip relative to the previous distinct value and a
		// non-increase to the right; plateau minima report their left edge.
		if density[i] < density[i-1] && density[i] <= density[i+1] {
			valleys = append(valleys, points[i])
		}
	}
	return valleys
}
