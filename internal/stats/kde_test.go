package stats

import (
	"math"
	"testing"
)

func TestKDEPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewKDE(empty) did not panic")
		}
	}()
	NewKDE(nil, 0.1)
}

func TestKDEDensityIntegratesToOne(t *testing.T) {
	rng := NewRand(1)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	k := NewKDE(xs, 0.05)
	// Trapezoid integration over a range wide enough to capture the tails.
	const n = 2000
	lo, hi := -1.0, 2.0
	step := (hi - lo) / n
	var integral float64
	prev := k.Density(lo)
	for i := 1; i <= n; i++ {
		cur := k.Density(lo + float64(i)*step)
		integral += (prev + cur) / 2 * step
		prev = cur
	}
	if !almostEqual(integral, 1, 0.01) {
		t.Fatalf("density integrates to %v, want ~1", integral)
	}
}

func TestKDEBimodalValley(t *testing.T) {
	// Two tight clusters around 0.2 and 0.8 must produce a valley between.
	var xs []float64
	rng := NewRand(7)
	for i := 0; i < 100; i++ {
		xs = append(xs, 0.2+0.03*rng.NormFloat64())
		xs = append(xs, 0.8+0.03*rng.NormFloat64())
	}
	k := NewKDE(xs, 0.05)
	valleys := k.Valleys(0, 1, 201)
	if len(valleys) == 0 {
		t.Fatal("no valley found between two well-separated modes")
	}
	found := false
	for _, v := range valleys {
		if v > 0.35 && v < 0.65 {
			found = true
		}
	}
	if !found {
		t.Fatalf("valleys %v do not include the inter-mode region (0.35,0.65)", valleys)
	}
}

func TestKDEUnimodalNoInteriorValley(t *testing.T) {
	var xs []float64
	rng := NewRand(3)
	for i := 0; i < 300; i++ {
		xs = append(xs, Clamp(0.5+0.1*rng.NormFloat64(), 0, 1))
	}
	k := NewKDE(xs, 0.08)
	valleys := k.Valleys(0.2, 0.8, 121)
	if len(valleys) != 0 {
		t.Fatalf("unexpected valleys %v for unimodal data", valleys)
	}
}

func TestSilvermanBandwidthConstantSample(t *testing.T) {
	bw := SilvermanBandwidth([]float64{0.5, 0.5, 0.5, 0.5})
	if bw <= 0 {
		t.Fatalf("bandwidth = %v, want > 0 floor", bw)
	}
}

func TestSilvermanBandwidthShrinksWithN(t *testing.T) {
	rng := NewRand(11)
	small := make([]float64, 50)
	large := make([]float64, 5000)
	for i := range small {
		small[i] = rng.NormFloat64()
	}
	for i := range large {
		large[i] = rng.NormFloat64()
	}
	if SilvermanBandwidth(large) >= SilvermanBandwidth(small) {
		t.Fatal("bandwidth should shrink as the sample grows")
	}
}

func TestKDEGridValidation(t *testing.T) {
	k := NewKDE([]float64{0.5}, 0.1)
	for _, fn := range []func(){
		func() { k.Grid(0, 1, 1) },
		func() { k.Grid(1, 0, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("Grid with invalid args did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestKDEDensitySymmetry(t *testing.T) {
	k := NewKDE([]float64{0.5}, 0.1)
	d1 := k.Density(0.4)
	d2 := k.Density(0.6)
	if math.Abs(d1-d2) > 1e-12 {
		t.Fatalf("single-point kernel not symmetric: %v vs %v", d1, d2)
	}
	if k.Density(0.5) <= d1 {
		t.Fatal("density not maximal at the sample point")
	}
}
