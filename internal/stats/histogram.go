package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram counts observations falling into contiguous bins defined by a
// strictly increasing slice of edges. Bin i covers [Edges[i], Edges[i+1]),
// except the last bin which is closed on both sides so that the overall upper
// edge is included (matching how Podium's score buckets treat 1.0).
type Histogram struct {
	Edges  []float64
	Counts []int
	total  int
}

// NewHistogram builds an empty histogram over the given edges. It panics if
// fewer than two edges are supplied or the edges are not strictly increasing,
// since a malformed histogram would silently corrupt every distribution
// metric downstream.
func NewHistogram(edges []float64) *Histogram {
	if len(edges) < 2 {
		panic("stats: NewHistogram requires at least two edges")
	}
	for i := 1; i < len(edges); i++ {
		if !(edges[i] > edges[i-1]) {
			panic(fmt.Sprintf("stats: histogram edges not strictly increasing at %d", i))
		}
	}
	e := make([]float64, len(edges))
	copy(e, edges)
	return &Histogram{Edges: e, Counts: make([]int, len(edges)-1)}
}

// UniformEdges returns k+1 equally spaced edges spanning [lo, hi].
func UniformEdges(lo, hi float64, k int) []float64 {
	if k < 1 || !(hi > lo) {
		panic("stats: UniformEdges requires k >= 1 and hi > lo")
	}
	edges := make([]float64, k+1)
	for i := 0; i <= k; i++ {
		edges[i] = lo + (hi-lo)*float64(i)/float64(k)
	}
	edges[k] = hi
	return edges
}

// Bin returns the bin index that x falls into, or -1 if x lies outside the
// histogram's range.
func (h *Histogram) Bin(x float64) int {
	n := len(h.Edges)
	if x < h.Edges[0] || x > h.Edges[n-1] || math.IsNaN(x) {
		return -1
	}
	if x == h.Edges[n-1] {
		return n - 2 // last bin is closed above
	}
	// sort.SearchFloat64s finds the first edge > x when we search x+ε; use
	// Search on the predicate edges[i] > x directly.
	i := sort.Search(n, func(i int) bool { return h.Edges[i] > x })
	return i - 1
}

// Add records one observation; out-of-range values are counted in total but
// no bin (callers that care should check Bin first).
func (h *Histogram) Add(x float64) {
	if b := h.Bin(x); b >= 0 {
		h.Counts[b]++
	}
	h.total++
}

// AddAll records every observation in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total returns the number of observations added, including out-of-range ones.
func (h *Histogram) Total() int { return h.total }

// Fractions returns the per-bin fraction of in-range observations; all zeros
// if nothing in range has been added.
func (h *Histogram) Fractions() []float64 {
	fr := make([]float64, len(h.Counts))
	inRange := 0
	for _, c := range h.Counts {
		inRange += c
	}
	if inRange == 0 {
		return fr
	}
	for i, c := range h.Counts {
		fr[i] = float64(c) / float64(inRange)
	}
	return fr
}

// KSStatistic returns the two-sample Kolmogorov-Smirnov statistic
// sup |F1(x) - F2(x)| between the empirical CDFs of xs and ys. The paper
// (Section 8.2) argues KS-style goodness-of-fit is inadequate for coverage
// evaluation — we implement it so the experiments can show the contrast with
// CD-sim rather than merely assert it. Panics if either sample is empty.
func KSStatistic(xs, ys []float64) float64 {
	if len(xs) == 0 || len(ys) == 0 {
		panic("stats: KSStatistic requires non-empty samples")
	}
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), ys...)
	sort.Float64s(a)
	sort.Float64s(b)
	var d float64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		// Advance past a whole tie-block on each side before comparing the
		// CDFs; advancing one sample through a shared value would report a
		// spurious gap for identical samples.
		v := math.Min(a[i], b[j])
		for i < len(a) && a[i] == v {
			i++
		}
		for j < len(b) && b[j] == v {
			j++
		}
		diff := math.Abs(float64(i)/float64(len(a)) - float64(j)/float64(len(b)))
		if diff > d {
			d = diff
		}
	}
	return d
}
