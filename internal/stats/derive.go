package stats

// Derive deterministically mixes a seed with a path of stream identifiers
// into a new seed, giving every (component, entity, step) combination its own
// independent generator without any shared sequential state. It is the
// order-free counterpart of Split: where Split consumes the parent
// generator's sequence (so stream identity depends on call order), Derive is
// a pure function of (seed, ids...), which makes it safe for concurrent
// workers and for resumable processes — a campaign orchestrator can ask for
// "the generator of user 17, round 2, attempt 3" before or after a crash and
// get bit-identical randomness.
//
// The mixer is SplitMix64's finalizer applied per identifier with distinct
// odd constants, the construction used by java.util.SplittableRandom and
// Vigna's splitmix64 reference.
func Derive(seed int64, ids ...int64) int64 {
	h := uint64(seed)
	for _, id := range ids {
		h += 0x9e3779b97f4a7c15 // golden-ratio increment separates path steps
		h ^= uint64(id)
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		h = (h ^ (h >> 27)) * 0x94d049bb133111eb
		h ^= h >> 31
	}
	return int64(h)
}
