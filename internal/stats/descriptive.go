// Package stats provides the small statistics toolkit Podium is built on:
// descriptive statistics, histograms, kernel density estimation, online
// accumulators and deterministic sampling helpers. Everything is stdlib-only
// and written for dense float64 slices, which is how property scores are
// represented throughout the system.
package stats

import (
	"math"
	"sort"
)

// Sum returns the sum of xs. An empty slice sums to 0.
func Sum(xs []float64) float64 {
	// Kahan summation: property scores are often many near-equal small
	// values, where naive summation loses precision that the bucketing
	// DP (Fisher-Jenks) is sensitive to.
	var sum, c float64
	for _, x := range xs {
		y := x - c
		t := sum + y
		c = (t - sum) - y
		sum = t
	}
	return sum
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the population variance of xs (dividing by n), or 0 for
// slices with fewer than one element. The paper's "rating variance" opinion
// metric is a population variance over the procured ratings.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// SampleVariance returns the Bessel-corrected variance (dividing by n-1),
// or 0 when len(xs) < 2.
func SampleVariance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	return Variance(xs) * float64(n) / float64(n-1)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs. It panics on an empty slice: callers in
// Podium always check emptiness first and a silent sentinel would mask bugs.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics (the "R-7" definition). xs need not
// be sorted. It panics on an empty slice or q outside [0,1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		panic("stats: Quantile q outside [0,1]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// QuantileSorted is Quantile for an already ascending-sorted slice, avoiding
// the copy. Used by the quantile bucketer, which sorts once and probes many q.
func QuantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: QuantileSorted of empty slice")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		panic("stats: QuantileSorted q outside [0,1]")
	}
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	h := q * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5 quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// IQR returns the interquartile range of xs (Q3 - Q1).
func IQR(xs []float64) float64 {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, 0.75) - quantileSorted(sorted, 0.25)
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It panics on length mismatch or fewer than two points, and returns 0 when
// either sample is constant (correlation undefined).
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Pearson length mismatch")
	}
	if len(xs) < 2 {
		panic("stats: Pearson requires at least two points")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Clamp restricts x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
