package stats

import "math"

// Online accumulates a stream of observations and exposes running moments
// using Welford's numerically stable algorithm. The synthetic dataset
// generators use it to normalize per-user rating aggregates in one pass.
type Online struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (o *Online) Add(x float64) {
	if o.n == 0 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	o.n++
	delta := x - o.mean
	o.mean += delta / float64(o.n)
	o.m2 += delta * (x - o.mean)
}

// N returns the number of observations added so far.
func (o *Online) N() int { return o.n }

// Mean returns the running mean, or 0 before any observation.
func (o *Online) Mean() float64 { return o.mean }

// Variance returns the running population variance, or 0 before any
// observation.
func (o *Online) Variance() float64 {
	if o.n == 0 {
		return 0
	}
	return o.m2 / float64(o.n)
}

// StdDev returns the running population standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Min returns the smallest observation, or 0 before any observation.
func (o *Online) Min() float64 { return o.min }

// Max returns the largest observation, or 0 before any observation.
func (o *Online) Max() float64 { return o.max }

// Merge folds another accumulator into o (parallel variance combination).
func (o *Online) Merge(other Online) {
	if other.n == 0 {
		return
	}
	if o.n == 0 {
		*o = other
		return
	}
	n1, n2 := float64(o.n), float64(other.n)
	delta := other.mean - o.mean
	total := n1 + n2
	o.mean += delta * n2 / total
	o.m2 += other.m2 + delta*delta*n1*n2/total
	o.n += other.n
	if other.min < o.min {
		o.min = other.min
	}
	if other.max > o.max {
		o.max = other.max
	}
}
