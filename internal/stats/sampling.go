package stats

import (
	"math"
	"math/rand"
	"sort"
)

// NewRand returns a deterministic generator for the given seed. Every
// randomized component in Podium receives its generator explicitly so that
// datasets, baselines and experiments are exactly reproducible.
func NewRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Split derives an independent child generator from rng. Experiments use it
// to give each repetition / each destination its own stream, so adding one
// more repetition never perturbs the previous ones.
func Split(rng *rand.Rand) *rand.Rand { return rand.New(rand.NewSource(rng.Int63())) }

// SampleWithoutReplacement returns k distinct values drawn uniformly from
// [0, n). It panics if k > n or either is negative. For small k relative to n
// it uses rejection via a set; otherwise a partial Fisher-Yates shuffle.
func SampleWithoutReplacement(rng *rand.Rand, n, k int) []int {
	if k < 0 || n < 0 || k > n {
		panic("stats: SampleWithoutReplacement requires 0 <= k <= n")
	}
	if k == 0 {
		return nil
	}
	if k*8 < n {
		seen := make(map[int]struct{}, k)
		out := make([]int, 0, k)
		for len(out) < k {
			v := rng.Intn(n)
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			out = append(out, v)
		}
		return out
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm[:k]
}

// WeightedIndex draws one index in [0, len(weights)) with probability
// proportional to its weight. Zero-weight entries are never drawn. Panics if
// weights is empty, contains a negative value, or sums to zero.
func WeightedIndex(rng *rand.Rand, weights []float64) int {
	if len(weights) == 0 {
		panic("stats: WeightedIndex of empty weights")
	}
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("stats: WeightedIndex negative weight")
		}
		total += w
	}
	if total == 0 {
		panic("stats: WeightedIndex all-zero weights")
	}
	r := rng.Float64() * total
	for i, w := range weights {
		r -= w
		if r < 0 {
			return i
		}
	}
	return len(weights) - 1 // floating point slack lands on the last entry
}

// linearScanMax is the pool size up to which WeightedSampler keeps
// WeightedIndex's subtraction scan. Small pools stay on the exact historical
// code path — bit-identical draws, so existing seeds keep producing existing
// datasets — while large pools (only reached by the scale presets) switch to
// prefix sums.
const linearScanMax = 2048

// WeightedSampler draws indices with probability proportional to a fixed
// weight vector, amortizing the per-draw cost: the weights are summed once
// at construction, and pools larger than linearScanMax binary-search a
// prefix-sum table instead of scanning. That turns the synthetic generator's
// dominant cost — millions of draws from hundred-thousand-entry destination
// pools — from O(n) per draw into O(log n). Each Sample consumes exactly one
// rng.Float64(), like WeightedIndex.
type WeightedSampler struct {
	weights []float64 // subtraction-scan path (small pools); nil otherwise
	cum     []float64 // inclusive prefix sums (large pools); nil otherwise
	total   float64
}

// NewWeightedSampler validates the weights (same contract as WeightedIndex)
// and precomputes the sampling structure. The weights slice is not retained
// on the prefix-sum path and is never modified.
func NewWeightedSampler(weights []float64) *WeightedSampler {
	if len(weights) == 0 {
		panic("stats: WeightedSampler of empty weights")
	}
	s := &WeightedSampler{}
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("stats: WeightedSampler negative weight")
		}
		total += w
	}
	if total == 0 {
		panic("stats: WeightedSampler all-zero weights")
	}
	s.total = total
	if len(weights) <= linearScanMax {
		s.weights = weights
		return s
	}
	s.cum = make([]float64, len(weights))
	var run float64
	for i, w := range weights {
		run += w
		s.cum[i] = run
	}
	return s
}

// Sample draws one index in [0, n) with probability proportional to its
// weight. Zero-weight entries are never drawn.
func (s *WeightedSampler) Sample(rng *rand.Rand) int {
	r := rng.Float64() * s.total
	if s.cum == nil {
		// Identical to WeightedIndex, preserving its draws bit-for-bit.
		for i, w := range s.weights {
			r -= w
			if r < 0 {
				return i
			}
		}
		return len(s.weights) - 1
	}
	// Smallest i with cum[i] > r; strict inequality skips zero-weight runs.
	i := sort.Search(len(s.cum), func(i int) bool { return s.cum[i] > r })
	if i == len(s.cum) {
		i = len(s.cum) - 1 // floating point slack lands on the last entry
	}
	return i
}

// ZipfWeights returns n weights following a Zipf law with exponent s:
// weight(i) ∝ 1/(i+1)^s. The synthetic datasets use Zipfian popularity for
// cities and cuisine categories, which is what produces the skewed group
// sizes the paper's coverage-vs-distance findings hinge on.
func ZipfWeights(n int, s float64) []float64 {
	if n <= 0 {
		panic("stats: ZipfWeights requires n > 0")
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
	}
	return w
}
