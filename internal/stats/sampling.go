package stats

import (
	"math"
	"math/rand"
)

// NewRand returns a deterministic generator for the given seed. Every
// randomized component in Podium receives its generator explicitly so that
// datasets, baselines and experiments are exactly reproducible.
func NewRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Split derives an independent child generator from rng. Experiments use it
// to give each repetition / each destination its own stream, so adding one
// more repetition never perturbs the previous ones.
func Split(rng *rand.Rand) *rand.Rand { return rand.New(rand.NewSource(rng.Int63())) }

// SampleWithoutReplacement returns k distinct values drawn uniformly from
// [0, n). It panics if k > n or either is negative. For small k relative to n
// it uses rejection via a set; otherwise a partial Fisher-Yates shuffle.
func SampleWithoutReplacement(rng *rand.Rand, n, k int) []int {
	if k < 0 || n < 0 || k > n {
		panic("stats: SampleWithoutReplacement requires 0 <= k <= n")
	}
	if k == 0 {
		return nil
	}
	if k*8 < n {
		seen := make(map[int]struct{}, k)
		out := make([]int, 0, k)
		for len(out) < k {
			v := rng.Intn(n)
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			out = append(out, v)
		}
		return out
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm[:k]
}

// WeightedIndex draws one index in [0, len(weights)) with probability
// proportional to its weight. Zero-weight entries are never drawn. Panics if
// weights is empty, contains a negative value, or sums to zero.
func WeightedIndex(rng *rand.Rand, weights []float64) int {
	if len(weights) == 0 {
		panic("stats: WeightedIndex of empty weights")
	}
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("stats: WeightedIndex negative weight")
		}
		total += w
	}
	if total == 0 {
		panic("stats: WeightedIndex all-zero weights")
	}
	r := rng.Float64() * total
	for i, w := range weights {
		r -= w
		if r < 0 {
			return i
		}
	}
	return len(weights) - 1 // floating point slack lands on the last entry
}

// ZipfWeights returns n weights following a Zipf law with exponent s:
// weight(i) ∝ 1/(i+1)^s. The synthetic datasets use Zipfian popularity for
// cities and cuisine categories, which is what produces the skewed group
// sizes the paper's coverage-vs-distance findings hinge on.
func ZipfWeights(n int, s float64) []float64 {
	if n <= 0 {
		panic("stats: ZipfWeights requires n > 0")
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
	}
	return w
}
