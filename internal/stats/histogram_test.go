package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewHistogramValidation(t *testing.T) {
	for _, edges := range [][]float64{nil, {1}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", edges)
				}
			}()
			NewHistogram(edges)
		}()
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram([]float64{0, 0.25, 0.5, 0.75, 1})
	cases := []struct {
		x    float64
		want int
	}{
		{0, 0},
		{0.1, 0},
		{0.25, 1}, // left-closed
		{0.4999, 1},
		{0.75, 3},
		{1.0, 3}, // upper edge belongs to the last bin
		{-0.1, -1},
		{1.1, -1},
		{math.NaN(), -1},
	}
	for _, c := range cases {
		if got := h.Bin(c.x); got != c.want {
			t.Errorf("Bin(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestHistogramAddAndFractions(t *testing.T) {
	h := NewHistogram([]float64{0, 0.5, 1})
	h.AddAll([]float64{0.1, 0.2, 0.6, 2.0}) // last one out of range
	if h.Total() != 4 {
		t.Fatalf("Total = %d, want 4", h.Total())
	}
	if h.Counts[0] != 2 || h.Counts[1] != 1 {
		t.Fatalf("Counts = %v, want [2 1]", h.Counts)
	}
	fr := h.Fractions()
	if !almostEqual(fr[0], 2.0/3.0, 1e-12) || !almostEqual(fr[1], 1.0/3.0, 1e-12) {
		t.Fatalf("Fractions = %v", fr)
	}
}

func TestHistogramFractionsEmpty(t *testing.T) {
	h := NewHistogram([]float64{0, 1})
	fr := h.Fractions()
	if len(fr) != 1 || fr[0] != 0 {
		t.Fatalf("Fractions of empty = %v, want [0]", fr)
	}
}

func TestUniformEdges(t *testing.T) {
	edges := UniformEdges(0, 1, 4)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if !almostEqual(edges[i], want[i], 1e-12) {
			t.Fatalf("edges = %v, want %v", edges, want)
		}
	}
}

func TestKSStatisticIdenticalSamples(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := KSStatistic(xs, xs); got != 0 {
		t.Fatalf("KS of identical samples = %v, want 0", got)
	}
}

func TestKSStatisticDisjointSamples(t *testing.T) {
	if got := KSStatistic([]float64{0, 1, 2}, []float64{10, 11}); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("KS of disjoint samples = %v, want 1", got)
	}
}

func TestKSStatisticKnownValue(t *testing.T) {
	// F1 jumps at {1,2}, F2 jumps at {1.5, 2.5}; max gap is 0.5 just after 1.
	got := KSStatistic([]float64{1, 2}, []float64{1.5, 2.5})
	if !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("KS = %v, want 0.5", got)
	}
}

// Property: KS is symmetric and in [0,1].
func TestKSStatisticProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		xs := sanitize(a)
		ys := sanitize(b)
		if len(xs) == 0 || len(ys) == 0 {
			return true
		}
		d1 := KSStatistic(xs, ys)
		d2 := KSStatistic(ys, xs)
		return d1 >= 0 && d1 <= 1 && almostEqual(d1, d2, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: every in-range point lands in exactly one bin and bin edges
// bracket it.
func TestHistogramBinBracketsProperty(t *testing.T) {
	h := NewHistogram(UniformEdges(0, 1, 7))
	f := func(raw uint16) bool {
		x := float64(raw) / float64(math.MaxUint16)
		b := h.Bin(x)
		if b < 0 || b >= len(h.Counts) {
			return false
		}
		if x < h.Edges[b] {
			return false
		}
		if b == len(h.Counts)-1 {
			return x <= h.Edges[b+1]
		}
		return x < h.Edges[b+1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func sanitize(raw []float64) []float64 {
	out := make([]float64, 0, len(raw))
	for _, v := range raw {
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			out = append(out, v)
		}
	}
	return out
}
