package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestSumEmpty(t *testing.T) {
	if got := Sum(nil); got != 0 {
		t.Fatalf("Sum(nil) = %v, want 0", got)
	}
}

func TestSumKahanPrecision(t *testing.T) {
	// One large value followed by many tiny ones: naive summation loses the
	// tiny contributions, Kahan keeps them.
	xs := make([]float64, 1001)
	xs[0] = 1e8
	for i := 1; i <= 1000; i++ {
		xs[i] = 1e-3
	}
	if got, want := Sum(xs), 1e8+1.0; !almostEqual(got, want, 1e-6) {
		t.Fatalf("Sum = %.10f, want %.10f", got, want)
	}
}

func TestMean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.xs); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestVariance(t *testing.T) {
	if got := Variance([]float64{2, 2, 2}); got != 0 {
		t.Errorf("Variance of constants = %v, want 0", got)
	}
	// Var([1,2,3,4]) = 1.25 (population).
	if got := Variance([]float64{1, 2, 3, 4}); !almostEqual(got, 1.25, 1e-12) {
		t.Errorf("Variance = %v, want 1.25", got)
	}
	// Sample variance divides by n-1.
	if got := SampleVariance([]float64{1, 2, 3, 4}); !almostEqual(got, 5.0/3.0, 1e-12) {
		t.Errorf("SampleVariance = %v, want 5/3", got)
	}
	if got := SampleVariance([]float64{7}); got != 0 {
		t.Errorf("SampleVariance of single = %v, want 0", got)
	}
}

func TestMinMaxPanicOnEmpty(t *testing.T) {
	for name, f := range map[string]func(){
		"Min": func() { Min(nil) },
		"Max": func() { Max(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(nil) did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v, want -1", got)
	}
	if got := Max(xs); got != 5 {
		t.Errorf("Max = %v, want 5", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // unsorted on purpose
	cases := []struct{ q, want float64 }{
		{0, 1},
		{1, 4},
		{0.5, 2.5},
		{0.25, 1.75},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile([]float64{9}, 0.3); got != 9 {
		t.Errorf("Quantile single = %v, want 9", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile(empty) did not panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestMedianIQR(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Median(xs); got != 3 {
		t.Errorf("Median = %v, want 3", got)
	}
	if got := IQR(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("IQR = %v, want 2", got)
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(-0.5, 0, 1); got != 0 {
		t.Errorf("Clamp low = %v", got)
	}
	if got := Clamp(1.5, 0, 1); got != 1 {
		t.Errorf("Clamp high = %v", got)
	}
	if got := Clamp(0.5, 0, 1); got != 0.5 {
		t.Errorf("Clamp mid = %v", got)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	// Perfect positive and negative correlation.
	if got := Pearson(xs, []float64{2, 4, 6, 8, 10}); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("Pearson = %v, want 1", got)
	}
	if got := Pearson(xs, []float64{5, 4, 3, 2, 1}); !almostEqual(got, -1, 1e-12) {
		t.Fatalf("Pearson = %v, want -1", got)
	}
	// Constant sample: defined as 0.
	if got := Pearson(xs, []float64{7, 7, 7, 7, 7}); got != 0 {
		t.Fatalf("Pearson with constant = %v", got)
	}
	// Known value: x={1,2,3}, y={1,3,2} → r = 0.5.
	if got := Pearson([]float64{1, 2, 3}, []float64{1, 3, 2}); !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("Pearson = %v, want 0.5", got)
	}
}

func TestPearsonPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"mismatch": func() { Pearson([]float64{1}, []float64{1, 2}) },
		"short":    func() { Pearson([]float64{1}, []float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

// Property: Pearson is symmetric, bounded by [-1,1], and invariant under
// positive affine transforms of either argument.
func TestPearsonProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 4 {
			return true
		}
		n := len(raw) / 2
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := 0; i < n; i++ {
			xs[i] = float64(raw[i])
			ys[i] = float64(raw[n+i])
		}
		r := Pearson(xs, ys)
		if r < -1-1e-9 || r > 1+1e-9 {
			return false
		}
		if !almostEqual(r, Pearson(ys, xs), 1e-9) {
			return false
		}
		scaled := make([]float64, n)
		for i := range xs {
			scaled[i] = 3*xs[i] + 7
		}
		return almostEqual(r, Pearson(scaled, ys), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, qa, qb uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		a := float64(qa) / 255
		b := float64(qb) / 255
		if a > b {
			a, b = b, a
		}
		va, vb := Quantile(xs, a), Quantile(xs, b)
		return va <= vb+1e-9 && va >= Min(xs)-1e-9 && vb <= Max(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: population variance is never negative and zero for constants.
func TestVarianceNonNegativeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
				xs = append(xs, v)
			}
		}
		return Variance(xs) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
