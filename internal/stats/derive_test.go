package stats

import "testing"

func TestDeriveDeterministic(t *testing.T) {
	a := Derive(7, 1, 2, 3)
	b := Derive(7, 1, 2, 3)
	if a != b {
		t.Fatalf("Derive not deterministic: %d vs %d", a, b)
	}
}

func TestDeriveSeparatesStreams(t *testing.T) {
	seen := map[int64]string{}
	record := func(name string, v int64) {
		if prev, dup := seen[v]; dup {
			t.Fatalf("streams %q and %q collide on %d", prev, name, v)
		}
		seen[v] = name
	}
	// Distinct ids, orders, depths and seeds must land on distinct seeds.
	record("7/1,2", Derive(7, 1, 2))
	record("7/2,1", Derive(7, 2, 1))
	record("7/1", Derive(7, 1))
	record("7/1,2,0", Derive(7, 1, 2, 0))
	record("8/1,2", Derive(8, 1, 2))
	record("7/0", Derive(7, 0))
	record("7/", Derive(7))
}

func TestDeriveGeneratorsIndependent(t *testing.T) {
	// Neighbouring streams should not produce correlated first draws.
	var vals []float64
	for u := int64(0); u < 64; u++ {
		vals = append(vals, NewRand(Derive(42, u)).Float64())
	}
	var mean float64
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	if mean < 0.35 || mean > 0.65 {
		t.Fatalf("first draws of derived streams look biased: mean %.3f", mean)
	}
}
