package stats

import (
	"testing"
	"testing/quick"
)

func TestSampleWithoutReplacementBasics(t *testing.T) {
	rng := NewRand(42)
	for _, c := range []struct{ n, k int }{{10, 0}, {10, 3}, {10, 10}, {1000, 5}} {
		got := SampleWithoutReplacement(rng, c.n, c.k)
		if len(got) != c.k {
			t.Fatalf("n=%d k=%d: len=%d", c.n, c.k, len(got))
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= c.n {
				t.Fatalf("value %d out of range [0,%d)", v, c.n)
			}
			if seen[v] {
				t.Fatalf("duplicate value %d", v)
			}
			seen[v] = true
		}
	}
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	rng := NewRand(1)
	for _, c := range []struct{ n, k int }{{5, 6}, {-1, 0}, {3, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("n=%d k=%d did not panic", c.n, c.k)
				}
			}()
			SampleWithoutReplacement(rng, c.n, c.k)
		}()
	}
}

func TestSampleWithoutReplacementDeterministic(t *testing.T) {
	a := SampleWithoutReplacement(NewRand(7), 100, 10)
	b := SampleWithoutReplacement(NewRand(7), 100, 10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different samples")
		}
	}
}

func TestWeightedIndexRespectsZeros(t *testing.T) {
	rng := NewRand(3)
	weights := []float64{0, 1, 0, 2, 0}
	for i := 0; i < 1000; i++ {
		idx := WeightedIndex(rng, weights)
		if weights[idx] == 0 {
			t.Fatalf("drew zero-weight index %d", idx)
		}
	}
}

func TestWeightedIndexDistribution(t *testing.T) {
	rng := NewRand(5)
	weights := []float64{1, 3}
	counts := [2]int{}
	const trials = 20000
	for i := 0; i < trials; i++ {
		counts[WeightedIndex(rng, weights)]++
	}
	frac := float64(counts[1]) / trials
	if frac < 0.72 || frac > 0.78 {
		t.Fatalf("index 1 drawn with frequency %v, want ~0.75", frac)
	}
}

func TestWeightedIndexPanics(t *testing.T) {
	rng := NewRand(1)
	for name, w := range map[string][]float64{
		"empty":    nil,
		"negative": {1, -1},
		"allzero":  {0, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			WeightedIndex(rng, w)
		}()
	}
}

func TestZipfWeightsDecreasing(t *testing.T) {
	w := ZipfWeights(10, 1.1)
	for i := 1; i < len(w); i++ {
		if w[i] >= w[i-1] {
			t.Fatalf("weights not strictly decreasing at %d: %v", i, w)
		}
	}
	if w[0] != 1 {
		t.Fatalf("first weight = %v, want 1", w[0])
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRand(9)
	c1 := Split(parent)
	c2 := Split(parent)
	// The two children must be distinct streams.
	same := true
	for i := 0; i < 10; i++ {
		if c1.Int63() != c2.Int63() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("Split produced identical child streams")
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	rng := NewRand(21)
	xs := make([]float64, 500)
	var o Online
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 1
		o.Add(xs[i])
	}
	if !almostEqual(o.Mean(), Mean(xs), 1e-9) {
		t.Errorf("online mean %v vs batch %v", o.Mean(), Mean(xs))
	}
	if !almostEqual(o.Variance(), Variance(xs), 1e-9) {
		t.Errorf("online variance %v vs batch %v", o.Variance(), Variance(xs))
	}
	if o.Min() != Min(xs) || o.Max() != Max(xs) {
		t.Error("online min/max mismatch")
	}
	if o.N() != len(xs) {
		t.Errorf("N = %d", o.N())
	}
}

func TestOnlineMerge(t *testing.T) {
	rng := NewRand(22)
	var a, b, whole Online
	var xs []float64
	for i := 0; i < 100; i++ {
		x := rng.Float64() * 10
		xs = append(xs, x)
		if i < 40 {
			a.Add(x)
		} else {
			b.Add(x)
		}
		whole.Add(x)
	}
	a.Merge(b)
	if !almostEqual(a.Mean(), whole.Mean(), 1e-9) || !almostEqual(a.Variance(), whole.Variance(), 1e-9) {
		t.Fatalf("merged (%v, %v) vs whole (%v, %v)", a.Mean(), a.Variance(), whole.Mean(), whole.Variance())
	}
	var empty Online
	empty.Merge(a)
	if empty.N() != a.N() || !almostEqual(empty.Mean(), a.Mean(), 1e-12) {
		t.Fatal("merge into empty accumulator failed")
	}
}

// Property: online variance is always non-negative regardless of input order.
func TestOnlineVarianceNonNegativeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var o Online
		for _, v := range sanitize(raw) {
			if v > 1e100 || v < -1e100 {
				continue // keep squared deviations finite
			}
			o.Add(v)
		}
		return o.Variance() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
