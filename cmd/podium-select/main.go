// podium-select runs one diverse-user selection over a profiles JSON file
// and prints the selected users with their explanations (Section 5 of the
// paper). Customization feedback (Section 6) is given as property labels:
// every group (bucket) of the named property joins the corresponding
// feedback set.
//
// Usage:
//
//	podium-select -in profiles.json -budget 8
//	podium-select -in profiles.json -weights Iden -coverage Prop -buckets 5
//	podium-select -in profiles.json -must-have "avgRating Mexican" -priority "livesIn Tokyo"
//	podium-select -in profiles.json -campaign -non-response 0.3 -wal run.wal
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"podium"
	"podium/internal/explain"
	"podium/internal/load"
	"podium/internal/taxonomy"
)

type labelList []string

func (l *labelList) String() string { return strings.Join(*l, ",") }
func (l *labelList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	var (
		in       = flag.String("in", "", "profiles JSON file (required)")
		budget   = flag.Int("budget", 8, "number of users to select")
		weights  = flag.String("weights", "LBS", "weight scheme: Iden | LBS | EBS")
		coverage = flag.String("coverage", "Single", "coverage scheme: Single | Prop")
		rule     = flag.String("rule", "", "selection rule: "+strings.Join(podium.RuleNames(), " | ")+" (default coverage)")
		buckets  = flag.Int("buckets", 3, "score buckets per property")
		method   = flag.String("method", "kmeans", "bucketing: equal-width | quantile | jenks | kmeans | em | kde-valleys")
		topK     = flag.Int("topk", 200, "top-weight groups in the headline coverage statistic")
		distProp = flag.String("distribution", "", "also chart this property's population-vs-selection distribution")
		mine     = flag.Bool("mine-functional", false, "mine functional property families and apply the inferred falsehoods before grouping")

		// Campaign mode: asynchronous procurement rounds with non-response
		// repair instead of a one-shot selection.
		campaignMode = flag.Bool("campaign", false, "run an asynchronous procurement campaign (solicit, retry, repair)")
		campSeed     = flag.Int64("seed", 1, "campaign: simulation seed")
		nonResponse  = flag.Float64("non-response", 0.2, "campaign: population non-response probability (negative = none)")
		decline      = flag.Float64("decline", 0, "campaign: probability a user refuses the campaign outright")
		maxRounds    = flag.Int("max-rounds", 6, "campaign: select→solicit→repair cycles before giving up")
		walPath      = flag.String("wal", "", "campaign: journal path — resumes an interrupted campaign")
	)
	queryStr := flag.String("query", "", "declarative selection query (overrides the other selection flags)")
	var mustHave, mustNot, priority labelList
	flag.Var(&mustHave, "must-have", "property whose groups are 𝒢₊ (repeatable)")
	flag.Var(&mustNot, "must-not", "property whose groups are 𝒢₋ (repeatable)")
	flag.Var(&priority, "priority", "property whose groups get priority coverage (repeatable)")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "podium-select: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	// Any on-disk format works: JSON, binary (.podium), repository log
	// (.plog) — detected by magic bytes.
	repo, err := load.Repository(*in)
	if err != nil {
		fatal(err)
	}
	if *mine {
		mined, derived, err := taxonomy.MineAndApplyFunctionalRules(repo, " ", 2)
		if err != nil {
			fatal(err)
		}
		for _, m := range mined {
			fmt.Fprintf(os.Stderr, "mined functional family %q (%d variants, support %d)\n",
				m.Prefix, len(m.Variants), m.Support)
		}
		fmt.Fprintf(os.Stderr, "inference derived %d scores\n\n", derived)
	}

	ws, err := parseWeights(*weights)
	if err != nil {
		fatal(err)
	}
	cs, err := parseCoverage(*coverage)
	if err != nil {
		fatal(err)
	}
	p, err := podium.New(repo,
		podium.WithBuckets(*buckets),
		podium.WithBucketing(*method),
		podium.WithWeights(ws),
		podium.WithCoverage(cs),
		podium.WithRule(*rule),
		podium.WithTopK(*topK),
	)
	if err != nil {
		fatal(err)
	}

	if *campaignMode {
		runCampaign(p, repo, *budget, *rule, *campSeed, *nonResponse, *decline, *maxRounds, *walPath)
		return
	}

	var sel *podium.Selection
	if *queryStr != "" {
		sel, err = p.SelectQuery(*queryStr)
	} else {
		var fb podium.Feedback
		fb, err = buildFeedback(p, mustHave, mustNot, priority)
		if err != nil {
			fatal(err)
		}
		if len(fb.MustHave)+len(fb.MustNot)+len(fb.Priority) == 0 {
			sel, err = p.Select(*budget)
		} else {
			sel, err = p.SelectCustom(*budget, fb)
		}
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("Repository: %d users, %d properties, %d groups\n\n",
		repo.NumUsers(), repo.NumProperties(), p.NumGroups())
	sel.Report.Render(os.Stdout)
	if sel.PriorityScore > 0 || sel.StandardScore > 0 {
		fmt.Printf("\nPriority-tier score: %.4g   Standard-tier score: %.4g\n",
			sel.PriorityScore, sel.StandardScore)
	}
	if *distProp != "" {
		all, subset, bs, err := p.Distribution(*distProp, sel.Users)
		if err != nil {
			fatal(err)
		}
		labels := make([]string, len(bs))
		for i, b := range bs {
			labels[i] = b.String()
		}
		fmt.Println()
		explain.RenderDistribution(os.Stdout, *distProp, labels, all, subset)
	}
}

// runCampaign drives an asynchronous procurement campaign and prints its
// per-round transcript: who was selected, how each solicitation wave went,
// who dropped out, and the coverage the accepted panel reached.
func runCampaign(p *podium.Podium, repo *podium.Repository, budget int, rule string, seed int64, nonResponse, decline float64, maxRounds int, walPath string) {
	cfg := podium.CampaignConfig{
		Budget:    budget,
		Rule:      rule,
		MaxRounds: maxRounds,
		Seed:      seed,
		Behavior: podium.CampaignBehavior{
			NonResponse: nonResponse,
			Decline:     decline,
		},
	}
	c, err := p.NewCampaign(cfg, walPath)
	if err != nil {
		fatal(err)
	}
	if err := c.Run(); err != nil {
		fatal(err)
	}

	fmt.Printf("Repository: %d users, %d properties, %d groups\n",
		repo.NumUsers(), repo.NumProperties(), p.NumGroups())
	fmt.Printf("Campaign: budget %d, seed %d, non-response %.2g, decline %.2g\n\n",
		budget, seed, nonResponse, decline)

	for _, rr := range c.Transcript() {
		kind := "select"
		if rr.Repaired {
			kind = "repair"
		}
		fmt.Printf("round %d (%s): solicited %d users\n", rr.Round, kind, len(rr.Selected))
		for _, w := range rr.Waves {
			counts := map[string]int{}
			for _, res := range w.Results {
				counts[res.Outcome.String()]++
			}
			fmt.Printf("  wave %d (backoff %.0fms): %d asked — %d answered, %d late, %d silent, %d declined\n",
				w.Attempt, w.BackoffMs, len(w.Results),
				counts["answered"], counts["late"], counts["silent"], counts["declined"])
		}
		fmt.Printf("  dead after round: %d   panel coverage: %.4g\n", len(rr.Dead), rr.Coverage)
	}

	st := c.Status()
	verdict := "exhausted (rounds or candidates ran out)"
	switch {
	case st.Converged:
		verdict = "converged (panel filled)"
	case st.Cancelled:
		verdict = "cancelled"
	}
	fmt.Printf("\nVerdict: %s\n", verdict)
	fmt.Printf("Panel (%d/%d accepted, coverage %.4g):\n", len(st.Accepted), budget, st.Coverage)
	for _, u := range st.Accepted {
		fmt.Printf("  %s\n", repo.UserName(u))
	}
	cs := c.Stats()
	fmt.Printf("\n%d rounds, %d waves, %d solicitations; %d repair selections replaced %d users (%.1fms repair wall time)\n",
		cs.Rounds, cs.Waves, cs.Solicited, cs.RepairSelections, cs.RepairedUsers, cs.RepairWallMs)
}

func buildFeedback(p *podium.Podium, mustHave, mustNot, priority labelList) (podium.Feedback, error) {
	var fb podium.Feedback
	expand := func(labels labelList, kind string) ([]podium.GroupID, error) {
		var ids []podium.GroupID
		for _, label := range labels {
			gs := p.GroupsOfProperty(label)
			if gs == nil {
				return nil, fmt.Errorf("%s: no property %q in the repository", kind, label)
			}
			ids = append(ids, gs...)
		}
		return ids, nil
	}
	var err error
	if fb.MustHave, err = expand(mustHave, "must-have"); err != nil {
		return fb, err
	}
	if fb.MustNot, err = expand(mustNot, "must-not"); err != nil {
		return fb, err
	}
	if fb.Priority, err = expand(priority, "priority"); err != nil {
		return fb, err
	}
	return fb, nil
}

func parseWeights(s string) (podium.WeightScheme, error) {
	switch strings.ToLower(s) {
	case "iden":
		return podium.WeightIden, nil
	case "lbs":
		return podium.WeightLBS, nil
	case "ebs":
		return podium.WeightEBS, nil
	}
	return 0, fmt.Errorf("unknown weight scheme %q", s)
}

func parseCoverage(s string) (podium.CoverageScheme, error) {
	switch strings.ToLower(s) {
	case "single":
		return podium.CoverSingle, nil
	case "prop":
		return podium.CoverProp, nil
	}
	return 0, fmt.Errorf("unknown coverage scheme %q", s)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "podium-select: %v\n", err)
	os.Exit(1)
}
