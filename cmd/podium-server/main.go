// podium-server serves the Podium HTTP API over a profiles JSON file or a
// freshly generated synthetic dataset — the Go counterpart of the paper's
// Flask prototype (Section 7). See GET / for the endpoint list.
//
// The serving layer is hardened: panic recovery, request body caps,
// per-request deadlines, configured listener timeouts, /healthz + /readyz,
// and SIGINT/SIGTERM graceful shutdown that drains in-flight requests,
// pauses campaign orchestrators at a journaled boundary, and flushes the
// mutation apply loop before exit. The -faults flag wraps the handler in a
// deterministic fault injector for chaos drills.
//
// Usage:
//
//	podium-server -in profiles.json -addr :8080
//	podium-server -dataset yelp -users 800
//	podium-server -log repo.plog -queue-depth 1024 -drain-timeout 15s
//	podium-server -faults 0.05   # chaos drill: 5% injected faults
//
// Distributed mode (see internal/shard): each shard server carves its slice
// of the shared dataset, and the coordinator fans selections out and merges:
//
//	podium-server -in profiles.json -shards 2 -shard-id 0 -addr :8081
//	podium-server -in profiles.json -shards 2 -shard-id 1 -addr :8082
//	podium-server -in profiles.json -coordinator http://127.0.0.1:8081,http://127.0.0.1:8082
//
// Replicated shards (R servers per shard, "|"-joined): the coordinator
// health-probes every replica, routes to the healthiest fresh one, fails
// over on error, and hedges slow calls to a sibling:
//
//	podium-server -in profiles.json -coordinator 'http://127.0.0.1:8081|http://127.0.0.1:9081,http://127.0.0.1:8082|http://127.0.0.1:9082'
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"
	"time"

	"podium/internal/client"
	"podium/internal/codec"
	"podium/internal/faults"
	"podium/internal/groups"
	"podium/internal/load"
	"podium/internal/obs"
	"podium/internal/profile"
	"podium/internal/server"
	"podium/internal/shard"
	"podium/internal/synth"
)

func defaultConfigs() []server.NamedConfig {
	return []server.NamedConfig{
		{
			Name:        "default",
			Description: "LBS weights, Single coverage, budget 8 — the paper's default configuration",
			Budget:      8, Weights: "LBS", Coverage: "Single",
		},
		{
			Name:        "eccentric",
			Description: "Iden weights: maximize the number of covered groups, favoring eccentric users",
			Budget:      8, Weights: "Iden", Coverage: "Single",
		},
	}
}

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address")
		in          = flag.String("in", "", "profiles file: JSON, binary or repository log (overrides -dataset)")
		logPath     = flag.String("log", "", "repository log path: serve a MUTABLE repository backed by this log (POST /api/users, /api/scores)")
		dataset     = flag.String("dataset", "tripadvisor", "generator preset when no -in: tripadvisor | yelp")
		snapImage   = flag.String("snapshot-image", "", "format-v2 binary snapshot image path: load the repository from it when present (near-instant restart), else persist one after the usual -in/-dataset load (immutable mode only)")
		users       = flag.Int("users", 500, "generated user count when no -in")
		buckets     = flag.Int("buckets", 3, "score buckets per property")
		batchWindow = flag.Duration("batch-window", 0, "mutable server: how long the writer waits for more mutations to coalesce (0 = drain whatever is queued)")
		batchMax    = flag.Int("batch-max", 256, "mutable server: max mutations per published snapshot")
		queueDepth  = flag.Int("queue-depth", 0, "mutable server: apply-loop queue bound; full queue sheds mutations with 429 (0 = 4×batch-max)")
		retryAfter  = flag.Duration("retry-after", time.Second, "mutable server: backoff advertised on shed (429) mutations")
		campaignDir = flag.String("campaign-dir", "", "journal campaigns as WAL files in this directory (empty = in-memory campaigns)")
		selCache    = flag.Bool("select-cache", true, "cross-epoch watermark-keyed select cache: serve repeat selections from pre-marshaled responses until a selection-relevant write lands")

		reqTimeout   = flag.Duration("request-timeout", 30*time.Second, "per-request deadline (negative = none)")
		maxBody      = flag.Int64("max-body", 8<<20, "request body cap in bytes (negative = none)")
		readTimeout  = flag.Duration("read-timeout", 30*time.Second, "http.Server read timeout (negative = none)")
		writeTimeout = flag.Duration("write-timeout", 60*time.Second, "http.Server write timeout (negative = none)")
		idleTimeout  = flag.Duration("idle-timeout", 120*time.Second, "http.Server idle timeout (negative = none)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown deadline for in-flight requests")
		faultsSpec   = flag.String("faults", "", `inject faults: a rate ("0.05") or "error=0.02,reset=0.01,truncate=0.01,latency=0.05,latency_ms=3,seed=7"`)
		pprofOn      = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (unauthenticated; off by default)")

		coordinator   = flag.String("coordinator", "", `comma-separated shard replica groups: serve as the distributed coordinator, fanning selections/campaigns out and merging (GreeDi round 2 runs here over the local -in/-dataset global repository). Each group is one shard's replica set, URLs joined by "|": "http://a:8081|http://b:8081,http://c:8082|http://d:8082" is two shards, two replicas each`)
		probeInterval = flag.Duration("probe-interval", 2*time.Second, "coordinator: replica health probe cadence (jittered ±25%)")
		probeTimeout  = flag.Duration("probe-timeout", time.Second, "coordinator: per-replica probe deadline")
		failTolerance = flag.Int("fail-tolerance", 2, "coordinator: consecutive probe/call failures before a replica is marked down")
		hedgeQuantile = flag.Float64("hedge-quantile", 0.9, "coordinator: latency quantile of recent calls after which a hedged request goes to a sibling replica")
		maxHedge      = flag.Duration("max-hedge", 500*time.Millisecond, "coordinator: hedge deadline ceiling (also used before latency history exists)")
		shardCount  = flag.Int("shards", 0, "serve one shard of the -in/-dataset repository: total shard count S (requires -shard-id)")
		shardID     = flag.Int("shard-id", -1, "which shard of -shards this server holds")
		shardSeed   = flag.Uint64("shard-seed", 0, "consistent-hash partition seed; every shard and the coordinator's planner must agree on it")
	)
	flag.Parse()

	configs := defaultConfigs()
	gcfg := groups.Config{K: *buckets}

	if (*shardCount > 0 || *coordinator != "") && *logPath != "" {
		log.Fatalf("podium-server: -shards and -coordinator require an immutable repository (drop -log)")
	}
	if *shardCount > 0 && (*shardID < 0 || *shardID >= *shardCount) {
		log.Fatalf("podium-server: -shard-id must be in [0,%d)", *shardCount)
	}

	// Both modes converge on (srv, closer): a hardened handler plus the
	// shutdown hook that runs after the listener drains.
	var srv *server.Server
	closer := func() {}

	if *logPath != "" {
		ms, err := server.NewMutableOpts(*logPath, *logPath, gcfg, configs, server.MutableOptions{
			BatchWindow: *batchWindow,
			MaxBatch:    *batchMax,
			QueueDepth:  *queueDepth,
			RetryAfter:  *retryAfter,
		})
		if err != nil {
			log.Fatalf("podium-server: %v", err)
		}
		srv = ms.Server
		closer = func() {
			// Drain order: campaigns pause at a journaled boundary, then the
			// apply loop flushes its queued batch and the repolog closes.
			ms.PauseCampaigns()
			if err := ms.Close(); err != nil {
				log.Printf("podium-server: closing repository log: %v", err)
			}
		}
		fmt.Printf("podium-server: mutable repository %s — %d users\n",
			*logPath, ms.Repository().NumUsers())
	} else {
		var repo *profile.Repository
		var name, format string
		loadStart := time.Now()
		if *snapImage != "" {
			r, err := codec.ReadImageFile(*snapImage)
			switch {
			case err == nil:
				repo, name, format = r, *snapImage, "image"
			case errors.Is(err, os.ErrNotExist):
				// First boot: fall through and persist the image below.
			default:
				log.Printf("podium-server: snapshot image %s: %v — falling back to -in/-dataset", *snapImage, err)
			}
		}
		if repo == nil && *in != "" {
			var err error
			repo, err = load.Repository(*in)
			if err != nil {
				log.Fatalf("podium-server: %v", err)
			}
			name, format = *in, "file"
		}
		if repo == nil {
			var cfg synth.Config
			switch *dataset {
			case "tripadvisor":
				cfg = synth.TripAdvisorLike(*users)
			case "yelp":
				cfg = synth.YelpLike(*users)
			default:
				log.Fatalf("podium-server: unknown dataset %q", *dataset)
			}
			repo = synth.Generate(cfg).Repo
			name, format = cfg.Name, "synth"
		}
		loadDur := time.Since(loadStart)
		if *snapImage != "" && format != "image" {
			if err := codec.WriteImageFile(*snapImage, repo); err != nil {
				log.Printf("podium-server: persisting snapshot image %s: %v", *snapImage, err)
			} else {
				fmt.Printf("podium-server: wrote snapshot image %s for fast restarts\n", *snapImage)
			}
		}
		if *shardCount > 0 {
			sub, scfg, err := shard.Carve(repo, gcfg, *shardCount, *shardID, *shardSeed)
			if err != nil {
				log.Fatalf("podium-server: %v", err)
			}
			repo, gcfg = sub, scfg
			name = fmt.Sprintf("%s#%d/%d", name, *shardID, *shardCount)
			fmt.Printf("podium-server: serving shard %d of %d (seed %d) — %d users\n",
				*shardID, *shardCount, *shardSeed, repo.NumUsers())
		}
		srv = server.New(name, repo, gcfg, configs)
		srv.RecordRepositoryLoad(format, loadDur)
		closer = srv.PauseCampaigns
		fmt.Printf("podium-server: %s — %d users, %d properties (loaded via %s in %s)\n",
			name, repo.NumUsers(), repo.NumProperties(), format, loadDur.Round(time.Millisecond))
	}
	srv.SetCampaignDir(*campaignDir)
	srv.SetSelectCacheEnabled(*selCache)
	if *pprofOn {
		srv.EnablePprof()
		fmt.Println("podium-server: pprof mounted at /debug/pprof/")
	}

	hopts := server.HardenOptions{
		RequestTimeout: *reqTimeout,
		MaxBodyBytes:   *maxBody,
	}
	handler := srv.Hardened(hopts)
	if *coordinator != "" {
		co := shard.NewCoordinator(srv, strings.Split(*coordinator, ","), shard.CoordinatorOptions{
			Resilience: client.ResilienceOptions{
				Breaker: &client.BreakerOptions{},
				Metrics: obs.NewClientMetrics(srv.Metrics()),
			},
			Health: shard.HealthOptions{
				ProbeInterval: *probeInterval,
				ProbeTimeout:  *probeTimeout,
				FailTolerance: *failTolerance,
				HedgeQuantile: *hedgeQuantile,
				MaxHedge:      *maxHedge,
			},
		})
		co.Registry().Start()
		base := closer
		closer = func() { co.Registry().Stop(); base() }
		handler = server.HardenedHandler(co, hopts)
		fmt.Printf("podium-server: COORDINATOR over %d shards: %v\n",
			len(co.ShardURLs()), co.ShardURLs())
	}
	if *faultsSpec != "" {
		cfg, err := faults.ParseSpec(*faultsSpec)
		if err != nil {
			log.Fatalf("podium-server: %v", err)
		}
		fmt.Printf("podium-server: CHAOS MODE — injecting faults at %.1f%% (%+v)\n",
			cfg.Total()*100, cfg)
		handler = faults.New(cfg).Wrap(handler)
	}

	err := server.Run(*addr, handler, server.RunOptions{
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
		IdleTimeout:  *idleTimeout,
		DrainTimeout: *drainTimeout,
		OnReady: func(a net.Addr) {
			fmt.Printf("podium-server: listening on http://%s\n", a)
		},
		// Flip /readyz to 503 the moment shutdown starts, so load balancers
		// stop routing here while in-flight requests drain.
		OnDrain: srv.StartDrain,
	})
	closer()
	if err != nil {
		log.Fatalf("podium-server: %v", err)
	}
	fmt.Println("podium-server: drained cleanly")
	os.Exit(0)
}
