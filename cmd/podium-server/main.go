// podium-server serves the Podium HTTP API over a profiles JSON file or a
// freshly generated synthetic dataset — the Go counterpart of the paper's
// Flask prototype (Section 7). See GET / for the endpoint list.
//
// Usage:
//
//	podium-server -in profiles.json -addr :8080
//	podium-server -dataset yelp -users 800
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"podium/internal/groups"
	"podium/internal/load"
	"podium/internal/profile"
	"podium/internal/server"
	"podium/internal/synth"
)

func defaultConfigs() []server.NamedConfig {
	return []server.NamedConfig{
		{
			Name:        "default",
			Description: "LBS weights, Single coverage, budget 8 — the paper's default configuration",
			Budget:      8, Weights: "LBS", Coverage: "Single",
		},
		{
			Name:        "eccentric",
			Description: "Iden weights: maximize the number of covered groups, favoring eccentric users",
			Budget:      8, Weights: "Iden", Coverage: "Single",
		},
	}
}

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address")
		in          = flag.String("in", "", "profiles file: JSON, binary or repository log (overrides -dataset)")
		logPath     = flag.String("log", "", "repository log path: serve a MUTABLE repository backed by this log (POST /api/users, /api/scores)")
		dataset     = flag.String("dataset", "tripadvisor", "generator preset when no -in: tripadvisor | yelp")
		users       = flag.Int("users", 500, "generated user count when no -in")
		buckets     = flag.Int("buckets", 3, "score buckets per property")
		batchWindow = flag.Duration("batch-window", 0, "mutable server: how long the writer waits for more mutations to coalesce (0 = drain whatever is queued)")
		batchMax    = flag.Int("batch-max", 256, "mutable server: max mutations per published snapshot")
		campaignDir = flag.String("campaign-dir", "", "journal campaigns as WAL files in this directory (empty = in-memory campaigns)")
	)
	flag.Parse()

	configs := defaultConfigs()

	if *logPath != "" {
		srv, err := server.NewMutableOpts(*logPath, *logPath, groups.Config{K: *buckets}, configs,
			server.MutableOptions{BatchWindow: *batchWindow, MaxBatch: *batchMax})
		if err != nil {
			log.Fatalf("podium-server: %v", err)
		}
		defer srv.Close()
		srv.SetCampaignDir(*campaignDir)
		fmt.Printf("podium-server: mutable repository %s — %d users; listening on http://%s\n",
			*logPath, srv.Repository().NumUsers(), *addr)
		log.Fatal(http.ListenAndServe(*addr, srv))
	}

	var repo *profile.Repository
	var name string
	if *in != "" {
		var err error
		repo, err = load.Repository(*in)
		if err != nil {
			log.Fatalf("podium-server: %v", err)
		}
		name = *in
	} else {
		var cfg synth.Config
		switch *dataset {
		case "tripadvisor":
			cfg = synth.TripAdvisorLike(*users)
		case "yelp":
			cfg = synth.YelpLike(*users)
		default:
			log.Fatalf("podium-server: unknown dataset %q", *dataset)
		}
		repo = synth.Generate(cfg).Repo
		name = cfg.Name
	}

	srv := server.New(name, repo, groups.Config{K: *buckets}, configs)
	srv.SetCampaignDir(*campaignDir)
	fmt.Printf("podium-server: %s — %d users, %d properties; listening on http://%s\n",
		name, repo.NumUsers(), repo.NumProperties(), *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
