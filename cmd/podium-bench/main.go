// podium-bench regenerates the paper's evaluation figures (Section 8) on the
// synthetic datasets. Each subcommand prints the rows/series of one figure;
// `all` runs everything. The -scale flag trades fidelity for speed: it sets
// the user counts of the generated datasets (paper scale is 4475 TripAdvisor
// users and 60000 Yelp users; the defaults are laptop-friendly).
//
// Usage:
//
//	podium-bench fig3a          # TripAdvisor intrinsic diversity
//	podium-bench fig3b          # TripAdvisor opinion diversity
//	podium-bench fig3c          # Yelp intrinsic diversity
//	podium-bench fig3d          # Yelp opinion diversity
//	podium-bench fig4           # customization effect
//	podium-bench fig5           # scalability in |U|
//	podium-bench fig6           # scalability in profile size
//	podium-bench approx         # greedy vs optimal ratio (§8.4)
//	podium-bench ablate         # design-choice ablations (DESIGN.md E10)
//	podium-bench extra          # extended baselines: stratified, max-min distance
//	podium-bench noise          # randomized selection (future work, §10)
//	podium-bench engine         # selection-engine timings → BENCH_selection.json
//	podium-bench serve          # serving architectures → BENCH_server.json
//	podium-bench campaign       # procurement campaigns → BENCH_campaign.json
//	podium-bench faults         # hardened serving under faults → BENCH_faults.json
//	podium-bench obs            # observability overhead → BENCH_obs.json
//	podium-bench steady         # selects under live writes → BENCH_steady.json
//	podium-bench dist           # sharded GreeDi selection vs exact → BENCH_dist.json
//	podium-bench rules          # selection rules: latency + trade-off → BENCH_rules.json
//	podium-bench -suite server  # flag form of the same
//	podium-bench all -scale 800
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"podium/internal/experiments"
	"podium/internal/synth"
	"podium/internal/viz"
)

func main() {
	fs := flag.NewFlagSet("podium-bench", flag.ExitOnError)
	scale := fs.Int("scale", 600, "dataset user count (0 = paper scale)")
	seed := fs.Int64("seed", 7, "experiment seed")
	budget := fs.Int("budget", 8, "selection budget B")
	raw := fs.Bool("raw", false, "print raw metric values instead of normalized")
	csvOut := fs.Bool("csv", false, "emit CSV instead of aligned tables (for plotting)")
	svgDir := fs.String("svgdir", "", "also write each table as an SVG chart into this directory")
	suite := fs.String("suite", "", "suite to run (alternative to the positional subcommand)")
	out := fs.String("out", "", "JSON report path (default: BENCH_selection.json for engine, BENCH_server.json for server)")
	par := fs.Int("parallelism", runtime.NumCPU(), "engine suite: worker count of the parallel variant")
	clients := fs.Int("clients", 8, "server suite: concurrent closed-loop clients")
	writePct := fs.Int("writes", 10, "server suite: percentage of mutating operations")
	duration := fs.Duration("duration", 2*time.Second, "server suite: measured run length per server")
	workers := fs.Int("workers", 8, "campaign suite: solicitation worker-pool size")

	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// Both `podium-bench engine -scale N` and `podium-bench -suite engine`
	// are accepted: a leading flag means the suite is named by -suite.
	var cmd string
	if strings.HasPrefix(os.Args[1], "-") {
		_ = fs.Parse(os.Args[1:])
		cmd = *suite
		if cmd == "" {
			usage()
			os.Exit(2)
		}
	} else {
		cmd = os.Args[1]
		_ = fs.Parse(os.Args[2:])
	}

	taUsers := *scale
	ylUsers := *scale
	if ylUsers > 0 {
		ylUsers = ylUsers * 4 / 3 // Yelp-like has more users, as in the paper
	}

	ta := func() *synth.Dataset { return synth.Generate(synth.TripAdvisorLike(taUsers)) }
	yl := func() *synth.Dataset { return synth.Generate(synth.YelpLike(ylUsers)) }

	emit := func(t *experiments.Table) {
		if *svgDir != "" {
			if err := writeSVG(*svgDir, t); err != nil {
				fmt.Fprintf(os.Stderr, "podium-bench: %v\n", err)
				os.Exit(1)
			}
		}
		if *csvOut {
			if err := t.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "podium-bench: %v\n", err)
				os.Exit(1)
			}
			fmt.Println()
			return
		}
		t.Render(os.Stdout)
		fmt.Println()
	}
	show := func(t *experiments.Table) {
		if !*raw {
			t = t.Normalized()
		}
		emit(t)
	}
	showRaw := emit

	run := map[string]func(){
		"fig3a": func() {
			show(experiments.RunIntrinsic(experiments.IntrinsicConfig{Dataset: ta(), Seed: *seed, Budget: *budget}))
		},
		"fig3b": func() {
			show(experiments.RunOpinion(experiments.OpinionConfig{Dataset: ta(), Seed: *seed, Budget: *budget}))
		},
		"fig3c": func() {
			show(experiments.RunIntrinsic(experiments.IntrinsicConfig{Dataset: yl(), Seed: *seed, Budget: *budget}))
		},
		"fig3d": func() {
			show(experiments.RunOpinion(experiments.OpinionConfig{Dataset: yl(), Seed: *seed, Budget: *budget, IncludeUsefulness: true}))
		},
		"fig4": func() {
			showRaw(experiments.RunCustomization(experiments.CustomizationConfig{Dataset: yl(), Seed: *seed, Budget: *budget}))
		},
		"fig5": func() {
			showRaw(experiments.RunScalabilityUsers(experiments.ScalabilityConfig{Seed: *seed, Budget: *budget}))
		},
		"fig6": func() {
			showRaw(experiments.RunScalabilityProfile(experiments.ScalabilityConfig{Seed: *seed, Budget: *budget}))
		},
		"approx": func() {
			showRaw(experiments.RunApproxRatio(experiments.ApproxConfig{Seed: *seed}))
		},
		"ablate": func() {
			cfg := experiments.AblationConfig{Dataset: ta(), Budget: *budget}
			showRaw(experiments.RunBucketingAblation(cfg))
			showRaw(experiments.RunSchemeAblation(cfg))
			showRaw(experiments.RunLazyAblation(cfg))
		},
		"extra": func() {
			showRaw(experiments.RunExtendedIntrinsic(experiments.IntrinsicConfig{Dataset: ta(), Seed: *seed, Budget: *budget}))
		},
		"noise": func() {
			showRaw(experiments.RunNoiseAblation(experiments.NoiseConfig{Dataset: ta(), Seed: *seed, Budget: *budget}))
		},
		"holdout": func() {
			show(experiments.RunHoldOut(experiments.HoldOutConfig{Dataset: ta(), Seed: *seed, Budget: *budget}))
		},
		"budget": func() {
			showRaw(experiments.RunBudgetSweep(experiments.BudgetSweepConfig{Dataset: ta(), Seed: *seed}))
		},
		"transfer": func() {
			showRaw(experiments.RunDiversityTransfer(experiments.TransferConfig{Dataset: ta(), Seed: *seed, Budget: *budget}))
		},
		"engine": func() {
			tab, rep := experiments.RunEngineSuite(experiments.EngineConfig{
				Seed: *seed, Budget: *budget, Parallelism: *par,
			})
			showRaw(tab)
			path := reportPath(*out, "BENCH_selection.json")
			if err := writeReport(path, rep); err != nil {
				fmt.Fprintf(os.Stderr, "podium-bench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (min parallel speedup %.2fx over the seed greedy)\n", path, rep.MinSpeedupPar)
		},
		"serve": func() {
			tab, rep, err := experiments.RunServerSuite(experiments.ServerConfig{
				Seed: *seed, Budget: *budget,
				Clients: *clients, WritePct: *writePct, Duration: *duration,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "podium-bench: %v\n", err)
				os.Exit(1)
			}
			showRaw(tab)
			path := reportPath(*out, "BENCH_server.json")
			if err := writeReport(path, rep); err != nil {
				fmt.Fprintf(os.Stderr, "podium-bench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (%.2fx read QPS over the single-mutex baseline)\n", path, rep.ReadSpeedup)
		},
		"campaign": func() {
			tab, rep, err := experiments.RunCampaignSuite(experiments.CampaignConfig{
				Seed: *seed, Budget: *budget, Users: *scale,
				Workers: *workers, Parallelism: *par,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "podium-bench: %v\n", err)
				os.Exit(1)
			}
			showRaw(tab)
			path := reportPath(*out, "BENCH_campaign.json")
			if err := writeReport(path, rep); err != nil {
				fmt.Fprintf(os.Stderr, "podium-bench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (repair recovers ≥ %.0f%% of dropout coverage loss)\n", path, rep.MinRecoveredFrac*100)
		},
		"obs": func() {
			tab, rep, err := experiments.RunObsSuite(experiments.ObsConfig{
				Seed: *seed, Budget: *budget, Clients: *clients, Duration: *duration,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "podium-bench: %v\n", err)
				os.Exit(1)
			}
			showRaw(tab)
			path := reportPath(*out, "BENCH_obs.json")
			if err := writeReport(path, rep); err != nil {
				fmt.Fprintf(os.Stderr, "podium-bench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (max instrumentation overhead %.2f%%; %d metric families exposed)\n",
				path, rep.MaxOverheadFrac*100, rep.MetricFamilies)
		},
		"steady": func() {
			tiers := []int{10000, 100000}
			tab, rep, err := experiments.RunSteadySuite(experiments.SteadyConfig{
				Seed: *seed, Budget: *budget, Tiers: tiers,
				Clients: *clients, Duration: *duration,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "podium-bench: %v\n", err)
				os.Exit(1)
			}
			showRaw(tab)
			path := reportPath(*out, "BENCH_steady.json")
			if err := writeReport(path, rep); err != nil {
				fmt.Fprintf(os.Stderr, "podium-bench: %v\n", err)
				os.Exit(1)
			}
			last := rep.Tiers[len(rep.Tiers)-1]
			hitRate := 0.0
			if c := last.Cached.Cache; c != nil {
				hitRate = c.HitRate
			}
			fmt.Printf("wrote %s (%.1fx steady-state select QPS at %d users; hit rate %.0f%%; identical=%t)\n",
				path, last.SelectSpeedup, last.Users, hitRate*100, last.Identical)
		},
		"scale": func() {
			tiers := []int{10000, 100000}
			if os.Getenv("PODIUM_SCALE_1M") == "1" {
				tiers = append(tiers, 1000000)
			}
			tab, rep, err := experiments.RunScaleSuite(experiments.ScaleConfig{
				Seed: *seed, Budget: *budget, Parallelism: *par, Tiers: tiers,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "podium-bench: %v\n", err)
				os.Exit(1)
			}
			showRaw(tab)
			path := reportPath(*out, "BENCH_scale.json")
			if err := writeReport(path, rep); err != nil {
				fmt.Fprintf(os.Stderr, "podium-bench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (image loads %.0fx faster than JSON; worst select-vs-linear %.2f)\n",
				path, rep.MinImageSpeedup, rep.MaxSelectVsLinear)
		},
		"rules": func() {
			tiers := []int{10000, 100000}
			tab, rep, err := experiments.RunRulesSuite(experiments.RulesConfig{
				Seed: *seed, Budget: *budget, Parallelism: *par, Tiers: tiers,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "podium-bench: %v\n", err)
				os.Exit(1)
			}
			showRaw(tab)
			path := reportPath(*out, "BENCH_rules.json")
			if err := writeReport(path, rep); err != nil {
				fmt.Fprintf(os.Stderr, "podium-bench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (%d rules; worst latency %.2fx of default; default coverage frac %.4f)\n",
				path, len(rep.Rules), rep.MaxVsDefault, rep.MinDefaultCoverageFrac)
		},
		"dist": func() {
			tab, rep, err := experiments.RunDistSuite(experiments.DistConfig{
				Seed: *seed, Budget: *budget, Parallelism: *par,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "podium-bench: %v\n", err)
				os.Exit(1)
			}
			showRaw(tab)
			path := reportPath(*out, "BENCH_dist.json")
			if err := writeReport(path, rep); err != nil {
				fmt.Fprintf(os.Stderr, "podium-bench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (worst merge coverage %.4f of exact; worst shard-loss %.4f; best speedup %.2fx; R=2 replica-loss coverage %.4f of R=1)\n",
				path, rep.MinRatio, rep.MinDegradedRatio, rep.MaxSpeedup, rep.ReplicaLossRatio)
		},
		"faults": func() {
			tab, rep, err := experiments.RunFaultsSuite(experiments.FaultsConfig{
				Seed: *seed, Budget: *budget,
				Clients: *clients, WritePct: *writePct, Duration: *duration,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "podium-bench: %v\n", err)
				os.Exit(1)
			}
			showRaw(tab)
			path := reportPath(*out, "BENCH_faults.json")
			if err := writeReport(path, rep); err != nil {
				fmt.Fprintf(os.Stderr, "podium-bench: %v\n", err)
				os.Exit(1)
			}
			worst := rep.Sweep[len(rep.Sweep)-1]
			fmt.Printf("wrote %s (hardening costs %.1f%% read QPS; %d client errors at %.0f%% faults; %.0f%% shed at overload)\n",
				path, (1-rep.Overhead.Ratio)*100, worst.ClientErrors, worst.Rate*100, rep.Overload.ShedRate*100)
		},
	}
	run["server"] = run["serve"]

	if cmd == "all" {
		for _, name := range []string{"fig3a", "fig3b", "fig3c", "fig3d", "fig4", "fig5", "fig6", "approx", "ablate", "extra", "noise", "holdout", "budget", "transfer"} {
			fmt.Printf("=== %s ===\n", name)
			run[name]()
		}
		return
	}
	f, ok := run[cmd]
	if !ok {
		usage()
		os.Exit(2)
	}
	f()
}

// writeSVG renders a table as an SVG chart in dir: line charts for the
// scalability sweeps (Figures 5/6), grouped bars for everything else.
func writeSVG(dir string, t *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	slug := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '-'
		}
	}, t.Title)
	slug = strings.Trim(strings.Join(strings.FieldsFunc(slug, func(r rune) bool { return r == '-' }), "-"), "-")
	f, err := os.Create(filepath.Join(dir, slug+".svg"))
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasPrefix(t.Title, "Scalability") {
		return viz.Lines(f, t)
	}
	return viz.GroupedBars(f, t)
}

// reportPath resolves the -out flag against a suite's default.
func reportPath(out, def string) string {
	if out != "" {
		return out
	}
	return def
}

// writeReport serializes a suite's JSON report.
func writeReport(path string, rep interface{}) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func usage() {
	fmt.Fprintln(os.Stderr, `podium-bench <fig3a|fig3b|fig3c|fig3d|fig4|fig5|fig6|approx|ablate|extra|noise|holdout|budget|transfer|engine|serve|campaign|faults|obs|steady|scale|dist|rules|all> [-scale N] [-seed S] [-budget B] [-raw] [-csv] [-suite NAME] [-out FILE] [-parallelism N] [-clients N] [-writes PCT] [-duration D] [-workers N]`)
}
