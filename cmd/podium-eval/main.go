// podium-eval scores an arbitrary user selection against Podium's intrinsic
// diversity metrics — total score, top-k coverage, intersected coverage,
// distribution similarity and proportionate deviation — so selections made
// by external systems (or by hand) can be compared with Podium's on equal
// footing. Users are given by name or by numeric ID, comma-separated or one
// per line in a file.
//
// Usage:
//
//	podium-eval -in profiles.json -users "Alice,Eve"
//	podium-eval -in corpus.podium -users 0,4,17 -topk 100
//	podium-eval -in profiles.json -users-file panel.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"podium/internal/groups"
	"podium/internal/load"
	"podium/internal/metrics"
	"podium/internal/profile"
)

func main() {
	var (
		in        = flag.String("in", "", "profiles file: JSON, binary or repository log (required)")
		usersFlag = flag.String("users", "", "comma-separated user names or IDs")
		usersFile = flag.String("users-file", "", "file with one user name or ID per line")
		topK      = flag.Int("topk", 200, "top-k group count for the coverage metrics")
		buckets   = flag.Int("buckets", 3, "score buckets per property")
	)
	flag.Parse()
	if *in == "" || (*usersFlag == "" && *usersFile == "") {
		fmt.Fprintln(os.Stderr, "podium-eval: -in and one of -users/-users-file are required")
		flag.Usage()
		os.Exit(2)
	}
	repo, err := load.Repository(*in)
	if err != nil {
		fatal(err)
	}

	var tokens []string
	if *usersFlag != "" {
		tokens = strings.Split(*usersFlag, ",")
	}
	if *usersFile != "" {
		data, err := os.ReadFile(*usersFile)
		if err != nil {
			fatal(err)
		}
		tokens = append(tokens, strings.Split(string(data), "\n")...)
	}
	users, err := resolveUsers(repo, tokens)
	if err != nil {
		fatal(err)
	}

	ix := groups.Build(repo, groups.Config{K: *buckets})
	inst := groups.NewInstance(ix, groups.WeightLBS, groups.CoverSingle, len(users))

	fmt.Printf("Repository: %d users, %d properties, %d groups\n",
		repo.NumUsers(), repo.NumProperties(), ix.NumGroups())
	fmt.Printf("Selection:  %d users\n\n", len(users))
	fmt.Printf("%-28s %12.4f\n", "Total score (LBS+Single)", metrics.TotalScore(inst, users))
	fmt.Printf("%-28s %12.4f\n", fmt.Sprintf("Top-%d coverage", *topK), metrics.TopKCoverage(ix, users, *topK))
	fmt.Printf("%-28s %12.4f\n", "Intersected coverage", metrics.IntersectedCoverage(ix, users, *topK))
	fmt.Printf("%-28s %12.4f\n", "Distribution similarity", metrics.DistributionSimilarity(ix, users, 20))
	fmt.Printf("%-28s %12.4f\n", "Proportionate deviation", metrics.ProportionateDeviation(ix, users, *topK))
}

// resolveUsers maps tokens — names or numeric IDs — to user IDs, rejecting
// unknowns and duplicates.
func resolveUsers(repo *profile.Repository, tokens []string) ([]profile.UserID, error) {
	byName := map[string]profile.UserID{}
	for u := 0; u < repo.NumUsers(); u++ {
		byName[repo.UserName(profile.UserID(u))] = profile.UserID(u)
	}
	seen := map[profile.UserID]bool{}
	var users []profile.UserID
	for _, tok := range tokens {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		var u profile.UserID
		if id, err := strconv.Atoi(tok); err == nil {
			if id < 0 || id >= repo.NumUsers() {
				return nil, fmt.Errorf("user id %d out of range [0,%d)", id, repo.NumUsers())
			}
			u = profile.UserID(id)
		} else {
			var ok bool
			u, ok = byName[tok]
			if !ok {
				return nil, fmt.Errorf("no user named %q", tok)
			}
		}
		if seen[u] {
			return nil, fmt.Errorf("user %q listed twice", tok)
		}
		seen[u] = true
		users = append(users, u)
	}
	if len(users) == 0 {
		return nil, fmt.Errorf("no users given")
	}
	return users, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "podium-eval: %v\n", err)
	os.Exit(1)
}
