// podium-gen generates a synthetic user repository (profiles JSON on stdout
// or -out) using the TripAdvisor-like or Yelp-like generator. The ground-
// truth reviews backing the opinion experiments are regenerated
// deterministically from the same seed by podium-bench, so only the profile
// repository is serialized.
//
// Usage:
//
//	podium-gen -dataset tripadvisor -users 500 -out profiles.json
//	podium-gen -dataset yelp -users 1000
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"podium/internal/codec"
	"podium/internal/synth"
)

func main() {
	var (
		dataset = flag.String("dataset", "tripadvisor", "generator preset: tripadvisor | yelp")
		users   = flag.Int("users", 500, "number of users (0 = paper scale: 4475 / 60000)")
		seed    = flag.Int64("seed", 0, "override the preset's seed when non-zero")
		out     = flag.String("out", "", "output file (default stdout)")
		format  = flag.String("format", "json", "output format: json | binary | dataset (binary incl. reviews)")
	)
	flag.Parse()

	var cfg synth.Config
	switch *dataset {
	case "tripadvisor":
		cfg = synth.TripAdvisorLike(*users)
	case "yelp":
		cfg = synth.YelpLike(*users)
	default:
		fmt.Fprintf(os.Stderr, "podium-gen: unknown dataset %q (want tripadvisor or yelp)\n", *dataset)
		os.Exit(2)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	ds := synth.Generate(cfg)

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "podium-gen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	var err error
	switch *format {
	case "json":
		err = ds.Repo.WriteJSON(w)
	case "binary":
		err = codec.WriteRepository(w, ds.Repo)
	case "dataset":
		err = codec.WriteDataset(w, ds.Repo, ds.Store)
	default:
		fmt.Fprintf(os.Stderr, "podium-gen: unknown format %q (want json, binary or dataset)\n", *format)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "podium-gen: writing repository: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "podium-gen: %s — %d users, %d properties, %d reviews over %d destinations\n",
		ds.Name, ds.Repo.NumUsers(), ds.Repo.NumProperties(), ds.Store.NumReviews(), ds.Store.NumDestinations())
}
